"""Generation-latency simulation by real, deterministic per-token work.

The paper's Table II measures wall-clock seconds for the RAG stage and
the LLM response separately.  For those measurements to be honest in
this reproduction, the simulated model must *spend* time generating
rather than report fabricated numbers — so the engine iterates a small
arithmetic recurrence per generated token.  The per-token cost is
configurable; ``cost=0`` disables the burn entirely for unit tests.
"""

from __future__ import annotations

from repro.errors import ModelError


class LatencyEngine:
    """Burns deterministic CPU time proportional to token count.

    Parameters
    ----------
    iterations_per_token:
        Inner-loop iterations of the logistic-map recurrence per token.
        Roughly 4e-8 s per iteration on a modern core; the default of
        ``6000`` gives ~0.25 ms/token, so a 300-token answer costs about
        75 ms — fast enough for benchmarks, slow enough to dominate the
        few-millisecond RAG stage, preserving the paper's ordering
        (RAG time ≪ LLM response time).
    """

    def __init__(self, *, iterations_per_token: int = 6000) -> None:
        if iterations_per_token < 0:
            raise ModelError(
                f"iterations_per_token must be >= 0, got {iterations_per_token}"
            )
        self.iterations_per_token = iterations_per_token

    def burn(self, n_tokens: int) -> float:
        """Do the work for ``n_tokens`` tokens; returns the recurrence value.

        The return value is consumed by the caller only to stop the
        interpreter from optimizing the loop away; the *time spent* is
        the effect.
        """
        if n_tokens < 0:
            raise ModelError(f"n_tokens must be >= 0, got {n_tokens}")
        x = 0.5
        total = self.iterations_per_token * n_tokens
        for _ in range(total):
            x = 3.6 * x * (1.0 - x)
        return x
