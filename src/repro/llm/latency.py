"""Generation-latency simulation by real, deterministic per-token work.

The paper's Table II measures wall-clock seconds for the RAG stage and
the LLM response separately.  For those measurements to be honest in
this reproduction, the simulated model must *spend* time generating
rather than report fabricated numbers — so the engine iterates a small
arithmetic recurrence per generated token.  The per-token cost is
configurable; ``cost=0`` disables the burn entirely for unit tests.

Two execution shapes perform the same number of recurrence steps:

* :meth:`LatencyEngine.burn` — the sequential path: a scalar Python
  loop, one request at a time, mirroring single-request decode.
* :class:`TokenBurnCollector` + :func:`burn_vectorized` — the batched
  path: requests defer their token work into a shared collector, and the
  batch coordinator flushes the accumulated iterations through a
  NumPy-vectorized kernel.  Same iteration count, executed at vector
  throughput — the simulation analogue of how real LLM serving amortizes
  per-token cost by batching requests into wide GEMMs.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.errors import ModelError

#: Default vector width for the batched burn kernel.
DEFAULT_BURN_LANES = 4096


def burn_vectorized(total_iterations: int, *, lanes: int = DEFAULT_BURN_LANES) -> float:
    """Run ``total_iterations`` logistic-map element-steps, NumPy-wide.

    The recurrence is the same one :meth:`LatencyEngine.burn` iterates
    scalar-wise; here each step advances ``lanes`` independent lanes at
    once, so the per-iteration cost drops by roughly the vector width's
    dispatch amortization (~20x on one core).  Returns the recurrence
    value so the work cannot be optimized away.
    """
    if lanes <= 0:
        raise ModelError(f"lanes must be positive, got {lanes}")
    if total_iterations <= 0:
        return 0.5
    steps = -(-total_iterations // lanes)  # ceil division
    x = np.full(lanes, 0.5, dtype=np.float64)
    tmp = np.empty_like(x)
    for _ in range(steps):
        np.subtract(1.0, x, out=tmp)
        np.multiply(x, tmp, out=tmp)
        np.multiply(3.6, tmp, out=x)
    return float(x[0])


class TokenBurnCollector:
    """Thread-safe sink for deferred token work during a batch.

    Worker threads account their completion tokens here instead of
    burning inline; the (single-threaded) batch coordinator calls
    :meth:`flush` after the barrier to spend the accumulated iterations
    through the vectorized kernel.  Totals are pure functions of the
    workload, so deferral never perturbs metric digests.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.tokens = 0
        self.iterations = 0
        self.flushes = 0

    def add(self, n_tokens: int, iterations: int) -> None:
        if n_tokens < 0 or iterations < 0:
            raise ModelError(f"negative burn accounting: {n_tokens} tokens, {iterations} iters")
        with self._lock:
            self.tokens += n_tokens
            self.iterations += iterations

    def pending(self) -> tuple[int, int]:
        with self._lock:
            return self.tokens, self.iterations

    def flush(self, *, lanes: int = DEFAULT_BURN_LANES) -> float:
        """Spend every deferred iteration; returns wall seconds burned."""
        with self._lock:
            total = self.iterations
            self.tokens = 0
            self.iterations = 0
            self.flushes += 1
        start = time.perf_counter()
        burn_vectorized(total, lanes=lanes)
        return time.perf_counter() - start


class LatencyEngine:
    """Burns deterministic CPU time proportional to token count.

    Parameters
    ----------
    iterations_per_token:
        Inner-loop iterations of the logistic-map recurrence per token.
        Roughly 4e-8 s per iteration on a modern core; the default of
        ``6000`` gives ~0.25 ms/token, so a 300-token answer costs about
        75 ms — fast enough for benchmarks, slow enough to dominate the
        few-millisecond RAG stage, preserving the paper's ordering
        (RAG time ≪ LLM response time).
    """

    def __init__(self, *, iterations_per_token: int = 6000) -> None:
        if iterations_per_token < 0:
            raise ModelError(
                f"iterations_per_token must be >= 0, got {iterations_per_token}"
            )
        self.iterations_per_token = iterations_per_token

    def burn(self, n_tokens: int, *, collector: TokenBurnCollector | None = None) -> float:
        """Do the work for ``n_tokens`` tokens; returns the recurrence value.

        With a ``collector``, the work is deferred: the iteration budget
        is accounted for a later vectorized flush instead of being spent
        inline (the batched-serving path).  The return value is consumed
        by the caller only to stop the interpreter from optimizing the
        loop away; the *time spent* is the effect.
        """
        if n_tokens < 0:
            raise ModelError(f"n_tokens must be >= 0, got {n_tokens}")
        total = self.iterations_per_token * n_tokens
        if collector is not None:
            collector.add(n_tokens, total)
            return 0.5
        x = 0.5
        for _ in range(total):
            x = 3.6 * x * (1.0 - x)
        return x
