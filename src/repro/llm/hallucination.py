"""Hallucination generation for the simulated models.

Two kinds, matching what the paper observed:

* **Fabrication** — a confident description of a nonexistent API
  (ChatGPT's ``KSPBurb`` answer).  If the registry has a fabrication
  falsehood whose topic matches the identifier we emit its canonical
  statement (detectable by the grader); otherwise a deterministic
  template invents one.
* **Misconception** — a registered topical falsehood mixed into an
  otherwise plausible answer (the "incorrect or inaccurate statements"
  of rubric score 1).
"""

from __future__ import annotations

from repro.corpus.facts import Falsehood, FactRegistry
from repro.utils.rng import stable_hash
from repro.utils.textproc import code_tokens, tokenize

_FABRICATION_TEMPLATES = (
    "{ident} is an implementation of a Krylov subspace method in PETSc used to "
    "solve systems of linear equations. Specifically, {ident} is a block "
    "version of the unpreconditioned Richardson iterative method with "
    "automatic damping selection.",
    "{ident} is a PETSc routine that configures the solver's internal "
    "communication pattern; it is typically called once after "
    "KSPSetFromOptions to enable the optimized reduction path.",
    "{ident} is an advanced option introduced for GPU execution; it selects a "
    "fused-kernel variant of the underlying iterative method.",
)


class HallucinationGenerator:
    """Deterministic plausible-but-wrong text."""

    def __init__(self, registry: FactRegistry) -> None:
        self.registry = registry

    def fabricate(self, identifier: str, *, model_name: str) -> tuple[str, Falsehood | None]:
        """A confident description of ``identifier`` (which does not exist).

        Returns the text and the registered falsehood used, if any.
        """
        for falsehood in self.registry.falsehoods.values():
            if falsehood.fabrication and identifier in falsehood.topics:
                return falsehood.statement, falsehood
        idx = stable_hash(f"{model_name}\x1f{identifier}", namespace="fab") % len(
            _FABRICATION_TEMPLATES
        )
        return _FABRICATION_TEMPLATES[idx].format(ident=identifier), None

    def topical_falsehood(self, question: str, *, model_name: str) -> Falsehood | None:
        """The registered misconception most related to ``question``.

        Fabrication falsehoods are excluded — those are only emitted via
        :meth:`fabricate` for identifiers actually named in the question.
        Returns None when nothing overlaps (the model then stays vague
        instead of wrong).
        """
        q_tokens = set(tokenize(question))
        q_idents = set(code_tokens(question))
        best: Falsehood | None = None
        best_score = 0
        for falsehood in self.registry.falsehoods.values():
            if falsehood.fabrication:
                continue
            score = 0
            for topic in falsehood.topics:
                if topic in q_idents:
                    score += 2
                elif topic.lower() in q_tokens or topic.lower() in question.lower():
                    score += 1
            if score > best_score or (
                score == best_score
                and score > 0
                and best is not None
                and falsehood.false_id < best.false_id
            ):
                best = falsehood
                best_score = score
        return best if best_score > 0 else None
