"""Mailing-list / Gmail simulation (paper Section IV substrate).

Models the transport the paper's Fig. 5 workflow runs over: public
mailing lists with archives, a Gmail-like account subscribed to
``petsc-users`` with unread tracking, an Apps-Script-like poller that
fires a webhook when unread mail arrives, and email-body hygiene
(reply-quote stripping, url-defense reversal).
"""

from repro.mail.message import Attachment, EmailMessage, strip_quoted_reply, undefense_urls
from repro.mail.mailinglist import MailArchive, MailingList, standard_petsc_lists
from repro.mail.gmail import GmailAccount, GmailLabel
from repro.mail.appsscript import AppsScriptPoller

__all__ = [
    "Attachment",
    "EmailMessage",
    "strip_quoted_reply",
    "undefense_urls",
    "MailingList",
    "MailArchive",
    "standard_petsc_lists",
    "GmailAccount",
    "GmailLabel",
    "AppsScriptPoller",
]
