"""Email message model and body hygiene.

The paper: "We lightly parse email bodies to remove quotes commonly
seen in email replies and revert the url-defense protected URLs so that
messages are presented concisely."
"""

from __future__ import annotations

import re
import urllib.parse
from dataclasses import dataclass, field

from repro.errors import MailError

_QUOTE_HEADER_RE = re.compile(
    r"^On .{0,120}(?:wrote|writes):\s*$", re.MULTILINE
)
_URLDEFENSE_V3_RE = re.compile(
    r"https://urldefense\.(?:com|proofpoint\.com)/v3/__(?P<url>.*?)__;(?P<b64>[A-Za-z0-9+/=!*'()-]*)!!(?:[^\s]*)",
)
_URLDEFENSE_V2_RE = re.compile(
    r"https://urldefense\.proofpoint\.com/v2/url\?(?P<qs>[^\s]+)"
)


@dataclass
class Attachment:
    filename: str
    content: bytes = b""

    @property
    def size(self) -> int:
        return len(self.content)


@dataclass
class EmailMessage:
    """One email in a mailing-list thread."""

    sender: str
    subject: str
    body: str
    message_id: str = ""
    in_reply_to: str = ""
    timestamp: float = 0.0
    attachments: list[Attachment] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.sender or "@" not in self.sender:
            raise MailError(f"invalid sender address {self.sender!r}")
        if not self.message_id:
            # RFC-ish synthetic id derived from content.
            from repro.utils.rng import stable_hash

            h = stable_hash(f"{self.sender}{self.subject}{self.body}", namespace="msgid")
            self.message_id = f"<{h:016x}@petsc.sim>"

    @property
    def thread_subject(self) -> str:
        """The subject with any number of Re:/Fwd: prefixes removed."""
        subject = self.subject
        while True:
            m = re.match(r"^\s*(?:Re|RE|re|Fwd|FWD|fwd)\s*:\s*", subject)
            if not m:
                return subject.strip()
            subject = subject[m.end():]

    def clean_body(self) -> str:
        """Body with quoted replies stripped and url-defense reversed."""
        return undefense_urls(strip_quoted_reply(self.body))


def strip_quoted_reply(body: str) -> str:
    """Remove quoted previous messages from a reply body.

    Drops everything from an "On <date>, <someone> wrote:" header on, and
    removes any remaining ``>``-prefixed quote lines and trailing
    signature blocks (``-- `` separator).
    """
    m = _QUOTE_HEADER_RE.search(body)
    if m:
        body = body[: m.start()]
    lines = [ln for ln in body.splitlines() if not ln.lstrip().startswith(">")]
    # Trailing signature.
    for i, ln in enumerate(lines):
        if ln.rstrip() == "--":
            lines = lines[:i]
            break
    text = "\n".join(lines)
    return re.sub(r"\n{3,}", "\n\n", text).strip()


def undefense_urls(text: str) -> str:
    """Reverse url-defense (proofpoint) protected URLs to their originals."""

    def _v3(m: re.Match[str]) -> str:
        return urllib.parse.unquote(m.group("url"))

    def _v2(m: re.Match[str]) -> str:
        params = urllib.parse.parse_qs(m.group("qs"))
        raw = params.get("u", [""])[0]
        # v2 encodes the URL with '-' for '%' and '_' for '/'.
        return urllib.parse.unquote(raw.replace("_", "/").replace("-", "%"))

    text = _URLDEFENSE_V3_RE.sub(_v3, text)
    text = _URLDEFENSE_V2_RE.sub(_v2, text)
    return text
