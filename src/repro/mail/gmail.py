"""Gmail-like account simulation: inbox, labels, unread tracking.

The paper creates ``petscbot@gmail.com``, subscribes it to petsc-users,
and has scripts poll for unread messages.  The account here offers the
minimal API those scripts need: deliver, query unread, fetch-and-mark-
read, and sender filtering (the real workflow ignores the chatbot's own
posts so it never reposts them).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import MailError
from repro.mail.message import EmailMessage


class GmailLabel(enum.Enum):
    UNREAD = "UNREAD"
    INBOX = "INBOX"
    PROCESSED = "PROCESSED"


@dataclass
class _Stored:
    message: EmailMessage
    labels: set[GmailLabel] = field(default_factory=lambda: {GmailLabel.INBOX, GmailLabel.UNREAD})


class GmailAccount:
    """An email account with unread labels, deliverable to a mailing list."""

    def __init__(self, address: str, *, ignore_senders: set[str] | None = None) -> None:
        if "@" not in address:
            raise MailError(f"invalid account address {address!r}")
        self.address = address
        self.ignore_senders = set(ignore_senders or ())
        self._messages: dict[str, _Stored] = {}
        self._order: list[str] = []

    # ------------------------------------------------------------ delivery
    def deliver(self, message: EmailMessage) -> None:
        """Subscriber callback for :class:`~repro.mail.mailinglist.MailingList`.

        Messages from ignored senders are stored already marked read so
        the poller never reprocesses them (the chatbot-loop guard).
        """
        if message.message_id in self._messages:
            return  # duplicate delivery
        stored = _Stored(message=message)
        if message.sender in self.ignore_senders:
            stored.labels.discard(GmailLabel.UNREAD)
        self._messages[message.message_id] = stored
        self._order.append(message.message_id)

    # ------------------------------------------------------------ queries
    def __len__(self) -> int:
        return len(self._order)

    def unread_count(self) -> int:
        return sum(
            1 for mid in self._order if GmailLabel.UNREAD in self._messages[mid].labels
        )

    def has_unread(self) -> bool:
        return self.unread_count() > 0

    def fetch_unread(self, *, mark_read: bool = True) -> list[EmailMessage]:
        """Unread messages in delivery order; optionally mark them read."""
        out: list[EmailMessage] = []
        for mid in self._order:
            stored = self._messages[mid]
            if GmailLabel.UNREAD in stored.labels:
                out.append(stored.message)
                if mark_read:
                    stored.labels.discard(GmailLabel.UNREAD)
        return out

    def mark_read(self, message_id: str) -> None:
        try:
            self._messages[message_id].labels.discard(GmailLabel.UNREAD)
        except KeyError:
            raise MailError(f"unknown message id {message_id!r}") from None

    def labels_of(self, message_id: str) -> set[GmailLabel]:
        try:
            return set(self._messages[message_id].labels)
        except KeyError:
            raise MailError(f"unknown message id {message_id!r}") from None

    def all_messages(self) -> list[EmailMessage]:
        return [self._messages[mid].message for mid in self._order]
