"""Mailing lists with subscribers and (optionally) public archives.

PETSc's three lists are modeled: ``petsc-users`` (public, archived),
``petsc-maint`` (private, no archives), ``petsc-dev``.  Subscribers are
callables — the Gmail simulation subscribes its inbox-append method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import MailError
from repro.mail.message import EmailMessage

Subscriber = Callable[[EmailMessage], None]


@dataclass
class MailArchive:
    """Public archive of a list: threads keyed by normalized subject."""

    threads: dict[str, list[EmailMessage]] = field(default_factory=dict)

    def add(self, message: EmailMessage) -> None:
        self.threads.setdefault(message.thread_subject, []).append(message)

    def thread(self, subject: str) -> list[EmailMessage]:
        try:
            return list(self.threads[subject])
        except KeyError:
            raise MailError(f"no archived thread with subject {subject!r}") from None

    def subjects(self) -> list[str]:
        return sorted(self.threads)

    def __len__(self) -> int:
        return sum(len(t) for t in self.threads.values())


class MailingList:
    """A mailing list that fans messages out to subscribers."""

    def __init__(self, name: str, *, public_archive: bool = True) -> None:
        if not name:
            raise MailError("mailing list needs a name")
        self.name = name
        self.address = f"{name}@lists.petsc.sim"
        self.archive: MailArchive | None = MailArchive() if public_archive else None
        self._subscribers: dict[str, Subscriber] = {}

    def subscribe(self, address: str, deliver: Subscriber) -> None:
        if address in self._subscribers:
            raise MailError(f"{address} is already subscribed to {self.name}")
        self._subscribers[address] = deliver

    def unsubscribe(self, address: str) -> None:
        if address not in self._subscribers:
            raise MailError(f"{address} is not subscribed to {self.name}")
        del self._subscribers[address]

    @property
    def subscriber_addresses(self) -> list[str]:
        return sorted(self._subscribers)

    def post(self, message: EmailMessage) -> None:
        """Deliver a message to every subscriber and the archive."""
        if self.archive is not None:
            self.archive.add(message)
        for deliver in self._subscribers.values():
            deliver(message)


def standard_petsc_lists() -> dict[str, MailingList]:
    """The three public PETSc lists with the paper's archive policy."""
    return {
        "petsc-users": MailingList("petsc-users", public_archive=True),
        "petsc-maint": MailingList("petsc-maint", public_archive=False),
        "petsc-dev": MailingList("petsc-dev", public_archive=True),
    }
