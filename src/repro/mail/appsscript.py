"""Apps-Script-like poller: checks Gmail, pings a Discord webhook.

The paper: "with Google Apps Script services, we use JavaScript to
periodically check whether there are new (unread) emails from
petsc-users in the Gmail account.  If there are, the script sends a
message to a webhook associated with a private channel named
petsc-users-notification."
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.durability.journal import Journal, RecoveryReport, recover_journal
from repro.mail.gmail import GmailAccount
from repro.observability.metrics import get_registry
from repro.observability.trace import Tracer

WebhookPost = Callable[[str], None]


@dataclass
class AppsScriptPoller:
    """Periodic trigger body: notify a webhook when unread mail exists.

    The poller does **not** read the mail itself (matching the paper's
    split of responsibilities): it only posts a notification; the email
    bot on the Discord side fetches and marks read.

    A scheduled execution must never die to a flaky webhook: failures
    are caught and counted, the payload goes to a dead-letter queue,
    and — since the mail stays unread until the email bot fetches it —
    the next tick redelivers.  Dead letters drain first on each tick so
    a notification lost to a transient outage arrives as soon as the
    webhook recovers.

    With a :class:`~repro.durability.journal.Journal` attached, every
    queue mutation (push / pop / drop) is journaled, so the dead-letter
    queue survives process death: :meth:`restore_dead_letters` replays
    the intact op prefix after a crash, dropping any torn tail.
    """

    account: GmailAccount
    webhook_post: WebhookPost
    notification_text: str = "New petsc-users email available"
    #: Dead letters kept for redelivery; beyond this the oldest drops
    #: (safe: every notification carries the same "go fetch" meaning).
    max_dead_letters: int = 32
    #: Optional tracer: queue drops become span events when a trace is
    #: active, so silent data loss shows up in the span tree.
    tracer: Tracer | None = None
    #: Optional write-ahead journal for the dead-letter queue.
    journal: Journal | None = None
    runs: int = 0
    notifications_sent: int = 0
    failures: int = 0
    dead_letters: deque[str] = field(default_factory=deque)

    # ------------------------------------------------------------ journal
    def attach_journal(self, path: str | Path, *, fsync: bool = True) -> Journal:
        """Journal every dead-letter queue mutation to ``path``."""
        self.journal = Journal(path, fsync=fsync)
        return self.journal

    def _journal_op(self, op: str, payload: str = "") -> None:
        if self.journal is not None:
            self.journal.append({"op": op, "payload": payload})

    def restore_dead_letters(
        self, path: str | Path, *, truncate: bool = True
    ) -> RecoveryReport:
        """Rebuild the dead-letter queue from its journal after a crash.

        Replays the intact op prefix (push / pop / drop) in order; the
        queue ends exactly as it was at the last acknowledged append.
        """
        report = recover_journal(path, truncate=truncate)
        self.dead_letters.clear()
        for record in report.records:
            op = record.get("op")
            if op == "push":
                self.dead_letters.append(record.get("payload", ""))
            elif op in ("pop", "drop") and self.dead_letters:
                self.dead_letters.popleft()
        get_registry().counter("repro.poller.dead_letters_restored").inc(
            len(self.dead_letters)
        )
        get_registry().gauge("repro.mail.dead_letters").set(len(self.dead_letters))
        return report

    # ------------------------------------------------------------ queue
    def _dead_letter(self, payload: str) -> None:
        """Queue a failed payload; overflow drops the oldest, loudly."""
        registry = get_registry()
        self.dead_letters.append(payload)
        self._journal_op("push", payload)
        while len(self.dead_letters) > self.max_dead_letters:
            dropped = self.dead_letters.popleft()
            self._journal_op("drop", dropped)
            registry.counter("repro.poller.dead_letter_dropped").inc()
            if self.tracer is not None and self.tracer.active:
                self.tracer.event(
                    "dead-letter:dropped", queue_depth=self.max_dead_letters
                )
        registry.gauge("repro.mail.dead_letters").set(len(self.dead_letters))

    def _post(self, payload: str) -> bool:
        """One delivery attempt; a failure dead-letters the payload."""
        registry = get_registry()
        try:
            self.webhook_post(payload)
        except Exception:
            self.failures += 1
            registry.counter("repro.mail.webhook_failures").inc()
            self._dead_letter(payload)
            return False
        self.notifications_sent += 1
        registry.counter("repro.mail.notifications").inc()
        registry.gauge("repro.mail.dead_letters").set(len(self.dead_letters))
        return True

    def tick(self) -> bool:
        """One scheduled execution; returns whether a notification fired.

        Never raises: a webhook exception is counted in ``failures`` and
        the payload requeued, so the scheduler's next run retries.
        """
        self.runs += 1
        registry = get_registry()
        registry.counter("repro.mail.polls").inc()
        fired = False
        # Redeliver dead letters before looking at new mail.
        for _ in range(len(self.dead_letters)):
            payload = self.dead_letters.popleft()
            self._journal_op("pop", payload)
            if not self._post(payload):
                break  # _post re-queued it; don't spin on a dead hop
            registry.counter("repro.mail.redeliveries").inc()
            fired = True
        if self.account.has_unread():
            fired = self._post(
                f"{self.notification_text} ({self.account.unread_count()} unread)"
            ) or fired
        return fired
