"""Apps-Script-like poller: checks Gmail, pings a Discord webhook.

The paper: "with Google Apps Script services, we use JavaScript to
periodically check whether there are new (unread) emails from
petsc-users in the Gmail account.  If there are, the script sends a
message to a webhook associated with a private channel named
petsc-users-notification."
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.mail.gmail import GmailAccount
from repro.observability.metrics import get_registry

WebhookPost = Callable[[str], None]


@dataclass
class AppsScriptPoller:
    """Periodic trigger body: notify a webhook when unread mail exists.

    The poller does **not** read the mail itself (matching the paper's
    split of responsibilities): it only posts a notification; the email
    bot on the Discord side fetches and marks read.

    A scheduled execution must never die to a flaky webhook: failures
    are caught and counted, the payload goes to a dead-letter queue,
    and — since the mail stays unread until the email bot fetches it —
    the next tick redelivers.  Dead letters drain first on each tick so
    a notification lost to a transient outage arrives as soon as the
    webhook recovers.
    """

    account: GmailAccount
    webhook_post: WebhookPost
    notification_text: str = "New petsc-users email available"
    #: Dead letters kept for redelivery; beyond this the oldest drops
    #: (safe: every notification carries the same "go fetch" meaning).
    max_dead_letters: int = 32
    runs: int = 0
    notifications_sent: int = 0
    failures: int = 0
    dead_letters: deque[str] = field(default_factory=deque)

    def _post(self, payload: str) -> bool:
        """One delivery attempt; a failure dead-letters the payload."""
        registry = get_registry()
        try:
            self.webhook_post(payload)
        except Exception:
            self.failures += 1
            registry.counter("repro.mail.webhook_failures").inc()
            self.dead_letters.append(payload)
            while len(self.dead_letters) > self.max_dead_letters:
                self.dead_letters.popleft()
            registry.gauge("repro.mail.dead_letters").set(len(self.dead_letters))
            return False
        self.notifications_sent += 1
        registry.counter("repro.mail.notifications").inc()
        registry.gauge("repro.mail.dead_letters").set(len(self.dead_letters))
        return True

    def tick(self) -> bool:
        """One scheduled execution; returns whether a notification fired.

        Never raises: a webhook exception is counted in ``failures`` and
        the payload requeued, so the scheduler's next run retries.
        """
        self.runs += 1
        registry = get_registry()
        registry.counter("repro.mail.polls").inc()
        fired = False
        # Redeliver dead letters before looking at new mail.
        for _ in range(len(self.dead_letters)):
            payload = self.dead_letters.popleft()
            if not self._post(payload):
                break  # _post re-queued it; don't spin on a dead hop
            registry.counter("repro.mail.redeliveries").inc()
            fired = True
        if self.account.has_unread():
            fired = self._post(
                f"{self.notification_text} ({self.account.unread_count()} unread)"
            ) or fired
        return fired
