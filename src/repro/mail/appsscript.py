"""Apps-Script-like poller: checks Gmail, pings a Discord webhook.

The paper: "with Google Apps Script services, we use JavaScript to
periodically check whether there are new (unread) emails from
petsc-users in the Gmail account.  If there are, the script sends a
message to a webhook associated with a private channel named
petsc-users-notification."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.mail.gmail import GmailAccount

WebhookPost = Callable[[str], None]


@dataclass
class AppsScriptPoller:
    """Periodic trigger body: notify a webhook when unread mail exists.

    The poller does **not** read the mail itself (matching the paper's
    split of responsibilities): it only posts a notification; the email
    bot on the Discord side fetches and marks read.
    """

    account: GmailAccount
    webhook_post: WebhookPost
    notification_text: str = "New petsc-users email available"
    runs: int = 0
    notifications_sent: int = 0

    def tick(self) -> bool:
        """One scheduled execution; returns whether a notification fired."""
        self.runs += 1
        if self.account.has_unread():
            self.webhook_post(
                f"{self.notification_text} ({self.account.unread_count()} unread)"
            )
            self.notifications_sent += 1
            return True
        return False
