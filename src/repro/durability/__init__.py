"""Crash-safe persistence primitives for every durable surface.

A process can die between any two instructions, and a power loss can
tear a write mid-sector.  Before this layer, every durable surface in
the stack — the interaction-history JSONL, the poller's dead-letter
queue, the index disk cache — wrote in place, so a crash mid-write left
silently corrupt state that only failed (or worse, didn't) at the next
load.  Two primitives close the gap:

* :func:`atomic_write` — snapshot semantics: temp file in the target
  directory, flush + fsync, then an atomic rename.  Readers see either
  the old bytes or the new bytes, never a mix.
* :class:`Journal` — incremental semantics: an append-only log of
  CRC-checksummed, length-framed records.  :func:`recover_journal`
  scans from the start, keeps the longest intact prefix, truncates the
  torn tail, and reports exactly what was dropped.

Both emit ``repro.durability.*`` metrics and accept the crash-point /
torn-write fault injectors from :mod:`repro.resilience.faults` (duck
typed — this package stays below the resilience layer).
"""

from repro.durability.atomic import atomic_write, atomic_write_json
from repro.durability.journal import (
    Journal,
    RecoveryReport,
    encode_record,
    recover_journal,
    scan_journal,
)

__all__ = [
    "Journal",
    "RecoveryReport",
    "atomic_write",
    "atomic_write_json",
    "encode_record",
    "recover_journal",
    "scan_journal",
]
