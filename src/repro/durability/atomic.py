"""All-or-nothing file replacement: temp file + fsync + rename.

``path.write_text`` truncates the target before writing, so a crash in
the middle leaves a short or empty file with no way to tell it from a
legitimate one.  :func:`atomic_write` writes the new bytes next to the
target, forces them to stable storage, then renames over the target —
``os.replace`` is atomic on POSIX and Windows, so readers observe
either the complete old content or the complete new content.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Protocol

from repro.observability.metrics import get_registry


class CrashHook(Protocol):
    """Duck type for crash-point injectors (see ``repro.resilience.faults``).

    ``check(site)`` either returns (no crash scheduled here) or raises
    :class:`~repro.errors.SimulatedCrashError` after leaving the disk in
    the state a real crash at that point would.
    """

    def check(self, site: str) -> None: ...


def _fsync_dir(directory: Path) -> None:
    """Flush a rename to stable storage (best effort off-POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(
    path: str | Path,
    data: bytes | str,
    *,
    encoding: str = "utf-8",
    fsync: bool = True,
    fault: CrashHook | None = None,
) -> Path:
    """Replace ``path``'s content with ``data`` atomically.

    The temp file lives in the target's directory (rename must not cross
    filesystems).  ``fsync=False`` skips the data/directory syncs —
    still atomic against process death, no longer against power loss.
    ``fault`` is consulted at the two interesting crash points:
    ``atomic:pre-write`` (nothing on disk yet) and ``atomic:pre-rename``
    (temp complete, target untouched).
    """
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    payload = data.encode(encoding) if isinstance(data, str) else data
    tmp = p.with_name(f".{p.name}.tmp")
    if fault is not None:
        fault.check("atomic:pre-write")
    with open(tmp, "wb") as fh:
        fh.write(payload)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    if fault is not None:
        fault.check("atomic:pre-rename")
    os.replace(tmp, p)
    if fsync:
        _fsync_dir(p.parent)
    get_registry().counter("repro.durability.atomic_writes").inc()
    return p


def atomic_write_json(
    path: str | Path,
    obj: Any,
    *,
    indent: int | None = 2,
    sort_keys: bool = True,
    fsync: bool = True,
    fault: CrashHook | None = None,
) -> Path:
    """Serialize ``obj`` as JSON and :func:`atomic_write` it."""
    return atomic_write(
        path,
        json.dumps(obj, indent=indent, sort_keys=sort_keys),
        fsync=fsync,
        fault=fault,
    )
