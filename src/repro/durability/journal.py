"""Append-only journal with per-record CRC framing and torn-write recovery.

Record layout (one frame per record, bytes)::

    J1 <payload-length> <crc32-hex8>\\n
    <payload bytes>\\n

The payload is canonical JSON (sorted keys, compact separators), so a
record's frame is a pure function of its content.  The header length
bounds the read, the CRC detects corruption, and the trailing newline
distinguishes "payload ends exactly at EOF because the write completed"
from "the file happens to end mid-payload".

Recovery contract: :func:`recover_journal` scans from byte 0 and keeps
the longest prefix of fully intact records.  The first malformed header,
short payload, missing terminator, CRC mismatch, or undecodable payload
stops the scan; everything from that byte onward is dropped (and, by
default, truncated off the file so the journal is clean for appends).
A torn tail can therefore cost at most the records the crash interrupted
— never a record that was previously acknowledged with fsync.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Protocol

from repro.errors import SimulatedCrashError
from repro.observability.metrics import get_registry

_MAGIC = b"J1"
#: Safety bound on a single record; a header claiming more is corrupt.
MAX_RECORD_BYTES = 64 * 1024 * 1024


class TornWriteHook(Protocol):
    """Duck type for torn-write injectors (see ``repro.resilience.faults``).

    ``intercept(frame)`` returns ``(bytes_to_write, crash)``; when
    ``crash`` is true the journal writes the (possibly cut) bytes and
    then simulates process death.
    """

    def intercept(self, frame: bytes) -> tuple[bytes, bool]: ...


def encode_record(payload: bytes) -> bytes:
    """Frame one payload: header, payload, terminator."""
    return b"%s %d %08x\n" % (_MAGIC, len(payload), zlib.crc32(payload)) + payload + b"\n"


def encode_json_record(record: dict) -> bytes:
    """Frame one record dict as canonical JSON."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return encode_record(payload)


@dataclass
class RecoveryReport:
    """What a journal scan found: the intact prefix and the dropped tail."""

    path: str
    records: list[dict] = field(default_factory=list)
    intact_bytes: int = 0
    total_bytes: int = 0
    truncated: bool = False
    reason: str = ""

    @property
    def intact_count(self) -> int:
        return len(self.records)

    @property
    def dropped_bytes(self) -> int:
        return self.total_bytes - self.intact_bytes

    def summary(self) -> dict:
        return {
            "path": self.path,
            "records": self.intact_count,
            "intact_bytes": self.intact_bytes,
            "total_bytes": self.total_bytes,
            "dropped_bytes": self.dropped_bytes,
            "truncated": self.truncated,
            "reason": self.reason,
        }


class Journal:
    """Crash-safe append-only record log.

    Appends are acknowledged only after the frame is flushed (and, with
    ``fsync=True``, synced) — an acknowledged record survives any
    subsequent crash, which is the property the recovery tests pin down
    byte by byte.  One writer per file; readers use
    :func:`scan_journal` / :func:`recover_journal`.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = True,
        fault: TornWriteHook | None = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.fault = fault
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[bytes] | None = None

    def _open(self) -> IO[bytes]:
        if self._fh is None or self._fh.closed:
            self._fh = open(self.path, "ab")
        return self._fh

    def append(self, record: dict) -> None:
        """Durably append one record; raises only if the write itself fails."""
        frame = encode_json_record(record)
        crash = False
        if self.fault is not None:
            frame, crash = self.fault.intercept(frame)
        fh = self._open()
        fh.write(frame)
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
        if crash:
            self.close()
            raise SimulatedCrashError(
                f"simulated crash during journal append to {self.path}"
            )
        get_registry().counter("repro.durability.journal_appends").inc()

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def scan_journal(path: str | Path) -> RecoveryReport:
    """Read the longest intact record prefix; never modifies the file.

    A missing file scans as an empty, clean journal — recovery after a
    crash that preceded the first append is a no-op, not an error.
    """
    p = Path(path)
    try:
        data = p.read_bytes()
    except FileNotFoundError:
        return RecoveryReport(path=str(p))
    report = RecoveryReport(path=str(p), total_bytes=len(data))
    pos = 0
    while pos < len(data):
        nl = data.find(b"\n", pos)
        if nl < 0:
            report.reason = f"torn header at byte {pos}"
            break
        parts = data[pos:nl].split(b" ")
        if len(parts) != 3 or parts[0] != _MAGIC:
            report.reason = f"malformed header at byte {pos}"
            break
        try:
            length = int(parts[1])
            crc = int(parts[2], 16)
        except ValueError:
            report.reason = f"malformed header at byte {pos}"
            break
        if not 0 <= length <= MAX_RECORD_BYTES:
            report.reason = f"implausible record length {length} at byte {pos}"
            break
        start, end = nl + 1, nl + 1 + length
        if end >= len(data) or data[end : end + 1] != b"\n":
            report.reason = f"torn record at byte {pos}"
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            report.reason = f"checksum mismatch at byte {pos}"
            break
        try:
            record = json.loads(payload)
        except (json.JSONDecodeError, UnicodeDecodeError):
            report.reason = f"undecodable payload at byte {pos}"
            break
        report.records.append(record)
        pos = end + 1
    report.intact_bytes = pos
    report.truncated = pos < len(data)
    return report


def recover_journal(
    path: str | Path, *, truncate: bool = True, fsync: bool = True
) -> RecoveryReport:
    """Scan ``path``, truncate the torn tail, and account the damage.

    Metrics: ``repro.durability.journal_recoveries`` per call,
    ``journal_records_recovered`` for the intact prefix,
    ``journal_bytes_dropped`` / ``journal_truncations`` for the tail —
    the loss is observable, never silent.  ``truncate=False`` reports
    without touching the file.
    """
    report = scan_journal(path)
    registry = get_registry()
    registry.counter("repro.durability.journal_recoveries").inc()
    registry.counter("repro.durability.journal_records_recovered").inc(
        report.intact_count
    )
    if report.truncated:
        registry.counter("repro.durability.journal_truncations").inc()
        registry.counter("repro.durability.journal_bytes_dropped").inc(
            report.dropped_bytes
        )
        if truncate:
            with open(path, "rb+") as fh:
                fh.truncate(report.intact_bytes)
                fh.flush()
                if fsync:
                    os.fsync(fh.fileno())
    return report
