"""Hybrid retrieval via reciprocal rank fusion (RRF)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import RetrievalError
from repro.retrieval.base import RetrievedDocument, Retriever, dedupe_by_id

if TYPE_CHECKING:
    from repro.context import RequestContext


def reciprocal_rank_fusion(
    result_lists: list[list[RetrievedDocument]],
    *,
    k: int = 8,
    rrf_k: float = 60.0,
) -> list[RetrievedDocument]:
    """Fuse ranked lists with RRF: score(d) = Σ 1 / (rrf_k + rank_i(d)).

    The standard rank-based fusion — robust to incomparable score scales
    across vector, BM25 and keyword retrievers.
    """
    if rrf_k <= 0:
        raise RetrievalError(f"rrf_k must be positive, got {rrf_k}")
    fused: dict[str, tuple[float, RetrievedDocument]] = {}
    for hits in result_lists:
        for rank, hit in enumerate(hits, start=1):
            score = 1.0 / (rrf_k + rank)
            if hit.doc_id in fused:
                prev_score, prev_hit = fused[hit.doc_id]
                fused[hit.doc_id] = (prev_score + score, prev_hit)
            else:
                fused[hit.doc_id] = (score, hit)
    ranked = sorted(fused.values(), key=lambda t: -t[0])
    return [
        RetrievedDocument(document=h.document, score=s, origin="hybrid")
        for s, h in ranked[:k]
    ]


class HybridRetriever(Retriever):
    """Runs several retrievers and fuses their rankings with RRF."""

    name = "hybrid"

    def __init__(self, retrievers: list[Retriever], *, rrf_k: float = 60.0) -> None:
        if not retrievers:
            raise RetrievalError("HybridRetriever needs at least one retriever")
        self.retrievers = list(retrievers)
        self.rrf_k = rrf_k

    def retrieve(
        self, query: str, *, k: int = 8, ctx: "RequestContext | None" = None
    ) -> list[RetrievedDocument]:
        lists = [dedupe_by_id(r.retrieve(query, k=k, ctx=ctx)) for r in self.retrievers]
        return reciprocal_rank_fusion(lists, k=k, rrf_k=self.rrf_k)
