"""Retriever interface shared by vector, BM25, keyword and hybrid retrieval."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.documents import Document

if TYPE_CHECKING:
    from repro.context import RequestContext


@dataclass
class RetrievedDocument:
    """A document plus where/why it was retrieved.

    ``origin`` records the stage that produced it (``"vector"``,
    ``"bm25"``, ``"keyword"``, ``"hybrid"``); the rerank pipeline and the
    interaction-history database both log it, mirroring the paper's
    emphasis on giving developers visibility into what was passed to the
    LLM.
    """

    document: Document
    score: float
    origin: str

    @property
    def doc_id(self) -> str:
        return self.document.doc_id


class Retriever(ABC):
    """Returns the top-k most relevant documents for a query string."""

    #: Short identifier used for span names, metric names
    #: (``repro.retrieval.<name>``), and ``RetrievedDocument.origin``.
    name: str = "retriever"

    @abstractmethod
    def retrieve(
        self, query: str, *, k: int = 8, ctx: "RequestContext | None" = None
    ) -> list[RetrievedDocument]:
        """Top-k documents, best first.

        ``ctx`` is the request-scoped context; caching wrappers use it to
        defer LRU bookkeeping until the batch commit point.
        """

    def __call__(
        self, query: str, *, k: int = 8, ctx: "RequestContext | None" = None
    ) -> list[RetrievedDocument]:
        return self.retrieve(query, k=k, ctx=ctx)


def dedupe_by_id(hits: list[RetrievedDocument]) -> list[RetrievedDocument]:
    """Drop later duplicates (same doc_id), preserving order."""
    seen: set[str] = set()
    out: list[RetrievedDocument] = []
    for hit in hits:
        if hit.doc_id not in seen:
            seen.add(hit.doc_id)
            out.append(hit)
    return out
