"""BM25 (Okapi) lexical retrieval, vectorized with NumPy.

The postings are stored CSR-style (one concatenated array of document
indices plus per-term slices), so scoring a query is a handful of
vectorized scatter-adds rather than a Python loop over documents.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.documents import Document
from repro.errors import RetrievalError
from repro.retrieval.base import RetrievedDocument, Retriever
from repro.embeddings.similarity import top_k_indices
from repro.utils.textproc import tokenize

if TYPE_CHECKING:
    from repro.context import RequestContext


class BM25Retriever(Retriever):
    """Okapi BM25 with the standard k1/b parametrization."""

    name = "bm25"

    def __init__(self, documents: list[Document], *, k1: float = 1.5, b: float = 0.75) -> None:
        if not documents:
            raise RetrievalError("BM25 needs at least one document")
        if k1 < 0 or not 0 <= b <= 1:
            raise RetrievalError(f"invalid BM25 parameters k1={k1}, b={b}")
        self.documents = list(documents)
        self.k1 = k1
        self.b = b

        n_docs = len(documents)
        doc_lens = np.zeros(n_docs, dtype=np.float64)
        # term -> {doc index -> tf}
        postings: dict[str, dict[int, int]] = {}
        for i, doc in enumerate(documents):
            toks = tokenize(doc.text)
            doc_lens[i] = len(toks)
            for t in toks:
                postings.setdefault(t, {}).setdefault(i, 0)
                postings[t][i] += 1

        self._avgdl = float(doc_lens.mean()) if doc_lens.size else 0.0
        self._doc_lens = doc_lens
        # CSR-ish storage: for each term, contiguous (doc_idx, tf) slices.
        self._term_slices: dict[str, tuple[int, int]] = {}
        idx_chunks: list[np.ndarray] = []
        tf_chunks: list[np.ndarray] = []
        self._idf: dict[str, float] = {}
        offset = 0
        for term, posting in postings.items():
            docs = np.fromiter(posting.keys(), dtype=np.int64, count=len(posting))
            tfs = np.fromiter(posting.values(), dtype=np.float64, count=len(posting))
            idx_chunks.append(docs)
            tf_chunks.append(tfs)
            self._term_slices[term] = (offset, offset + docs.size)
            offset += docs.size
            df = docs.size
            self._idf[term] = float(np.log(1.0 + (n_docs - df + 0.5) / (df + 0.5)))
        self._post_docs = np.concatenate(idx_chunks) if idx_chunks else np.empty(0, np.int64)
        self._post_tfs = np.concatenate(tf_chunks) if tf_chunks else np.empty(0, np.float64)
        # Precompute the per-document length normalization denominator part.
        self._len_norm = self.k1 * (1.0 - self.b + self.b * doc_lens / max(self._avgdl, 1e-12))

    def score(self, query: str) -> np.ndarray:
        """BM25 scores for every document (dense vector)."""
        scores = np.zeros(len(self.documents), dtype=np.float64)
        for term in set(tokenize(query)):
            sl = self._term_slices.get(term)
            if sl is None:
                continue
            docs = self._post_docs[sl[0] : sl[1]]
            tfs = self._post_tfs[sl[0] : sl[1]]
            contrib = self._idf[term] * tfs * (self.k1 + 1.0) / (tfs + self._len_norm[docs])
            np.add.at(scores, docs, contrib)
        return scores

    def retrieve(
        self, query: str, *, k: int = 8, ctx: "RequestContext | None" = None
    ) -> list[RetrievedDocument]:
        scores = self.score(query)
        idx = top_k_indices(scores, k)
        return [
            RetrievedDocument(document=self.documents[i], score=float(scores[i]), origin="bm25")
            for i in idx
            if scores[i] > 0.0
        ]
