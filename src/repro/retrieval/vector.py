"""Dense vector retrieval over a :class:`~repro.vectorstore.VectorStore`."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.retrieval.base import RetrievedDocument, Retriever
from repro.vectorstore import VectorStore

if TYPE_CHECKING:
    from repro.context import RequestContext


class VectorRetriever(Retriever):
    """Embedding similarity search (the RAG first pass, K=8 in the paper)."""

    name = "vector"

    def __init__(self, store: VectorStore, *, where: dict | None = None) -> None:
        self.store = store
        self.where = where

    def retrieve(
        self, query: str, *, k: int = 8, ctx: "RequestContext | None" = None
    ) -> list[RetrievedDocument]:
        hits = self.store.similarity_search_with_score(query, k=k, where=self.where)
        return [
            RetrievedDocument(document=doc, score=score, origin="vector")
            for doc, score in hits
        ]
