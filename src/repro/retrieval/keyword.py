"""PETSc-specific keyword search (paper Section III-C).

"Whenever a word in the query has a PETSc manual page associated with
it, for example KSPSolve, the manual page is added to the material that
RAG has found."  This retriever scans the query for PETSc-style
identifiers (CamelCase API names and ``-option_keys``) and returns the
matching manual pages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.corpus.builder import CorpusBundle
from repro.documents import Document
from repro.retrieval.base import RetrievedDocument, Retriever
from repro.utils.textproc import code_tokens

if TYPE_CHECKING:
    from repro.context import RequestContext


class ManualPageKeywordSearch(Retriever):
    """Exact manual-page lookup for identifiers mentioned in the query.

    Accepts either a full :class:`CorpusBundle` or a plain mapping of
    ``page name -> Document`` (the shape an
    :class:`~repro.index.IndexArtifact` stores), so the keyword path can
    be rebuilt from a cached artifact without the corpus in memory.
    """

    name = "keyword"

    def __init__(self, source: "CorpusBundle | Mapping[str, Document]") -> None:
        pages = getattr(source, "manual_page_names", source)
        self._pages: dict[str, Document] = dict(pages)
        # Option keys resolve to the page whose Options section mentions them.
        self._option_index: dict[str, Document] = {}
        for doc in self._pages.values():
            for tok in code_tokens(doc.text):
                if tok.startswith("-"):
                    self._option_index.setdefault(tok, doc)

    def known_identifiers(self) -> frozenset[str]:
        """All identifiers the corpus knows: page names and option keys."""
        return frozenset(self._pages) | frozenset(self._option_index)

    def lookup(self, identifier: str) -> Document | None:
        """The manual page for an exact identifier, if any."""
        if identifier.startswith("-"):
            return self._option_index.get(identifier)
        return self._pages.get(identifier)

    def retrieve(
        self, query: str, *, k: int = 8, ctx: "RequestContext | None" = None
    ) -> list[RetrievedDocument]:
        hits: list[RetrievedDocument] = []
        seen: set[str] = set()
        for ident in code_tokens(query):
            page = self.lookup(ident)
            if page is not None and page.doc_id not in seen:
                seen.add(page.doc_id)
                # Exact identifier match is maximal-confidence retrieval.
                hits.append(RetrievedDocument(document=page, score=1.0, origin="keyword"))
            if len(hits) >= k:
                break
        return hits
