"""First-pass retrieval: vector search, BM25, keyword lookup, hybrid fusion."""

from repro.retrieval.base import RetrievedDocument, Retriever
from repro.retrieval.bm25 import BM25Retriever
from repro.retrieval.keyword import ManualPageKeywordSearch
from repro.retrieval.vector import VectorRetriever
from repro.retrieval.hybrid import HybridRetriever, reciprocal_rank_fusion

__all__ = [
    "Retriever",
    "RetrievedDocument",
    "VectorRetriever",
    "BM25Retriever",
    "ManualPageKeywordSearch",
    "HybridRetriever",
    "reciprocal_rank_fusion",
]
