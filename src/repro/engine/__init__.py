"""The engine layer: batched query serving over a shared index artifact.

See DESIGN.md §8 for the artifact/engine/context layering and the
digest-stability contract the batch scheduler upholds.
"""

from repro.engine.caches import (
    CachedEmbedding,
    CacheTransaction,
    CachingRetriever,
    ContextBinder,
    LRUCache,
)
from repro.engine.engine import BatchItem, BatchResult, QueryEngine
from repro.engine.sharded import ShardedQueryEngine

__all__ = [
    "BatchItem",
    "BatchResult",
    "CacheTransaction",
    "CachedEmbedding",
    "CachingRetriever",
    "ContextBinder",
    "LRUCache",
    "QueryEngine",
    "ShardedQueryEngine",
]
