"""Shared query-time caches with deterministic bookkeeping.

Three caches back the engine: query-embedding, retrieval LRU, and the
answer cache (the last lives in :mod:`repro.engine.engine`; this module
provides the primitives and the two wrapper layers).

The determinism problem: an LRU mutates on *every* access (recency
reordering), so letting batch workers touch a shared LRU concurrently
would make its ordering — and therefore its future evictions — depend on
thread scheduling.  The fix is a transaction protocol.  During a batch,
the shared caches are frozen for writes: workers read them (hit/miss
counts stay pure functions of the workload, since the frozen contents
can't change mid-batch) and record every touch and insert into their
request's :class:`CacheTransaction`.  After the barrier the coordinator
replays the transactions in request-submission order, so the cache state
any *future* request observes is identical regardless of how many
workers ran the batch.

Sequential requests (no transaction bound) mutate the caches directly —
single-threaded access is already deterministic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Hashable

import numpy as np

from repro.embeddings.base import EmbeddingModel
from repro.observability.metrics import MetricsRegistry, get_registry
from repro.retrieval.base import RetrievedDocument, Retriever

if TYPE_CHECKING:
    from repro.context import RequestContext


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``capacity == 0`` disables the cache entirely (every ``get`` misses,
    every ``put`` is a no-op), which is how config turns a cache off
    without branching at every call site.  Reads/writes are lock-guarded;
    deterministic *ordering* under concurrency is the transaction
    protocol's job, not this class's.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._data: OrderedDict[Hashable, object] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def peek(self, key: Hashable, default: object = None) -> object:
        """Read without recency reordering (safe during a frozen batch)."""
        with self._lock:
            return self._data.get(key, default)

    def touch(self, key: Hashable) -> None:
        """Mark ``key`` most-recently-used (the replayed half of a hit)."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)

    def put(self, key: Hashable, value: object) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def items(self) -> list[tuple[Hashable, object]]:
        """Snapshot of (key, value) pairs, LRU-first (inspection only)."""
        with self._lock:
            return list(self._data.items())

    def evict_where(self, predicate: Callable[[Hashable, object], bool]) -> int:
        """Drop entries the predicate matches; returns how many.

        Recency order of the survivors is untouched, so scoped
        invalidation (the ingest lifecycle) does not perturb future
        eviction decisions for unrelated entries.
        """
        with self._lock:
            doomed = [k for k, v in self._data.items() if predicate(k, v)]
            for k in doomed:
                del self._data[k]
            return len(doomed)


class CacheTransaction:
    """Per-request record of deferred cache effects.

    Workers append; the batch coordinator replays via :meth:`commit` in
    request-submission order after the barrier.
    """

    def __init__(self) -> None:
        self.touches: list[tuple[LRUCache, Hashable]] = []
        self.writes: list[tuple[LRUCache, Hashable, object]] = []

    def touch(self, cache: LRUCache, key: Hashable) -> None:
        self.touches.append((cache, key))

    def write(self, cache: LRUCache, key: Hashable, value: object) -> None:
        self.writes.append((cache, key, value))

    def commit(self) -> None:
        for cache, key in self.touches:
            cache.touch(key)
        for cache, key, value in self.writes:
            cache.put(key, value)


class ContextBinder(threading.local):
    """The engine's thread-local pointer to the request being served.

    Cache wrappers sit below layers whose interfaces don't carry the
    request context (``EmbeddingModel.embed_query`` is called from
    inside the vector store), so the engine binds the active context
    here around each request instead of threading it through every
    signature on the way down.
    """

    def __init__(self) -> None:
        self.ctx: "RequestContext | None" = None


def _txn_of(ctx: "RequestContext | None") -> CacheTransaction | None:
    if ctx is None:
        return None
    txn = ctx.scratch.get("cache_txn")
    return txn if isinstance(txn, CacheTransaction) else None


class CachedEmbedding(EmbeddingModel):
    """Query-embedding memoization in front of a fitted model.

    Document embedding passes straight through (documents are embedded
    once, at index build); only ``embed_query`` — called on every vector
    retrieval — is cached.
    """

    def __init__(
        self,
        inner: EmbeddingModel,
        cache: LRUCache,
        binder: ContextBinder,
        registry_fn: Callable[[], MetricsRegistry] | None = None,
    ) -> None:
        self.inner = inner
        self.name = inner.name
        self.dim = inner.dim
        self.cache = cache
        self.binder = binder
        self._registry_fn = registry_fn if registry_fn is not None else get_registry

    def _embed_batch(self, texts: list[str]) -> np.ndarray:
        return self.inner._embed_batch(texts)

    def embed_documents(self, texts: list[str]) -> np.ndarray:
        return self.inner.embed_documents(texts)

    def embed_query(self, text: str) -> np.ndarray:
        registry = self._registry_fn()
        ctx = self.binder.ctx
        txn = _txn_of(ctx)
        cached = self.cache.peek(text)
        if cached is not None:
            registry.counter("repro.engine.embedding_cache.hits").inc()
            if txn is not None:
                txn.touch(self.cache, text)
            else:
                self.cache.touch(text)
            return cached  # vectors are never mutated downstream
        registry.counter("repro.engine.embedding_cache.misses").inc()
        vec = self.inner.embed_query(text)
        vec.flags.writeable = False
        if txn is not None:
            txn.write(self.cache, text, vec)
        else:
            self.cache.put(text, vec)
        return vec


class CachingRetriever(Retriever):
    """Retrieval LRU in front of any :class:`Retriever`.

    The cache key is (retriever name, query, k); values are the hit
    lists, copied shallowly on the way out so callers can slice and
    reorder without corrupting the cached entry.
    """

    def __init__(
        self,
        inner: Retriever,
        cache: LRUCache,
        binder: ContextBinder,
        registry_fn: Callable[[], MetricsRegistry] | None = None,
    ) -> None:
        self.inner = inner
        self.name = inner.name
        self.cache = cache
        self.binder = binder
        self._registry_fn = registry_fn if registry_fn is not None else get_registry

    @property
    def store(self):
        """Proxy to the wrapped retriever's vector store (workflow feed)."""
        return self.inner.store

    def retrieve(
        self, query: str, *, k: int = 8, ctx: "RequestContext | None" = None
    ) -> list[RetrievedDocument]:
        registry = self._registry_fn()
        ctx = ctx if ctx is not None else self.binder.ctx
        txn = _txn_of(ctx)
        key = (self.name, query, k)
        cached = self.cache.peek(key)
        if cached is not None:
            registry.counter("repro.engine.retrieval_cache.hits").inc()
            if txn is not None:
                txn.touch(self.cache, key)
            else:
                self.cache.touch(key)
            return list(cached)
        registry.counter("repro.engine.retrieval_cache.misses").inc()
        hits = self.inner.retrieve(query, k=k, ctx=ctx)
        if txn is not None:
            txn.write(self.cache, key, tuple(hits))
        else:
            self.cache.put(key, tuple(hits))
        return hits
