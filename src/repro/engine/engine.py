"""The query engine: one artifact, per-mode pipelines, batched serving.

A :class:`QueryEngine` owns one immutable
:class:`~repro.index.IndexArtifact` plus lazily-built pipelines for each
mode, and serves every consumer — CLI, workflow, bots, evaluation,
benchmarks — through two entry points:

* :meth:`QueryEngine.answer` — one question, sequential, with the
  shared caches consulted inline.
* :meth:`QueryEngine.answer_many` — a batch through a deterministic
  scheduler: a bounded worker pool, per-request contexts (own tracer,
  seeded RNG, explicit registry), deferred LRU commits replayed in
  submission order, and the simulated LLM's token burn collected and
  flushed through one vectorized kernel after the barrier.  Answers,
  metric digests, and span-structure digests are byte-identical
  regardless of worker count.

Determinism contract (see DESIGN.md §8): everything digest-relevant is a
pure function of (artifact digest, question list, mode, seed, cache
state at batch start).  Worker count and thread scheduling may only move
wall-clock numbers, which the digests exclude by construction.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.admission import ADMIT, QUEUE, SHED, AdmissionController, AdmissionDecision
from repro.config import WorkflowConfig
from repro.context import RequestContext
from repro.corpus.builder import CorpusBundle, build_default_corpus
from repro.engine.caches import (
    CacheTransaction,
    CachedEmbedding,
    CachingRetriever,
    ContextBinder,
    LRUCache,
)
from repro.errors import ConfigurationError, ReproError
from repro.index import IndexArtifact, get_or_build_index
from repro.llm.latency import TokenBurnCollector
from repro.observability import MetricsRegistry, Tracer, get_registry
from repro.observability.trace import Trace
from repro.pipeline.rag import PipelineResult, RAGPipeline, pipeline_from_artifact
from repro.pipeline.types import PipelineMode
from repro.resilience.faults import FaultInjector
from repro.resilience.policy import Deadline
from repro.utils.rng import derive_seed


def _question_digest(question: str) -> str:
    return hashlib.sha256(question.encode("utf-8", errors="replace")).hexdigest()


@dataclass
class _CachedAnswer:
    """The replayable slice of a pipeline result (no trace, no timings)."""

    answer: str
    model: str
    contexts: tuple
    candidates: tuple
    prompt: str
    completion: object
    attempts: int
    degraded: tuple

    @classmethod
    def from_result(cls, result: PipelineResult) -> "_CachedAnswer":
        return cls(
            answer=result.answer,
            model=result.model,
            contexts=tuple(result.contexts),
            candidates=tuple(result.candidates),
            prompt=result.prompt,
            completion=result.completion,
            attempts=result.attempts,
            degraded=tuple(result.degraded),
        )


@dataclass
class BatchItem:
    """One question's outcome within a batch, in input order."""

    index: int
    question: str
    result: PipelineResult | None
    cached: bool = False
    error: str = ""
    #: The admission layer rejected this request before any work ran.
    shed: bool = False
    #: Suggested client backoff in seconds (shed items only).
    retry_after: float = 0.0
    #: Span tree for items without a pipeline result (shed items get a
    #: one-span admission trace so the rejection is observable).
    trace: Trace | None = None

    @property
    def answered(self) -> bool:
        return self.result is not None

    def trace_or_result_trace(self) -> Trace | None:
        """The item-level trace wins: it is per-item even when the
        pipeline result (and its trace) is shared with a dedupe primary."""
        if self.trace is not None:
            return self.trace
        return self.result.trace if self.result is not None else None


@dataclass
class BatchResult:
    """Everything one :meth:`QueryEngine.answer_many` call produced."""

    mode: PipelineMode
    workers: int
    seed: int
    items: list[BatchItem] = field(default_factory=list)
    #: The admission ladder's decision vector; None when admission is off.
    decisions: list[AdmissionDecision] | None = None
    batch_seconds: float = 0.0
    #: Wall seconds the coordinator spent in the vectorized burn flush.
    burn_seconds: float = 0.0
    #: Completion tokens whose latency work was deferred to the flush.
    deferred_tokens: int = 0
    cache_sizes: dict = field(default_factory=dict)

    @property
    def results(self) -> list[PipelineResult | None]:
        return [it.result for it in self.items]

    @property
    def answered_count(self) -> int:
        return sum(1 for it in self.items if it.answered)

    @property
    def cached_count(self) -> int:
        return sum(1 for it in self.items if it.cached)

    @property
    def shed_count(self) -> int:
        return sum(1 for it in self.items if it.shed)

    @property
    def queued_count(self) -> int:
        if self.decisions is None:
            return 0
        return sum(1 for d in self.decisions if d.outcome == QUEUE)

    @property
    def admitted_count(self) -> int:
        """Requests that reached the engine (straight admits + queued)."""
        if self.decisions is None:
            return len(self.items)
        return sum(1 for d in self.decisions if d.outcome in (ADMIT, QUEUE))

    @property
    def questions_per_second(self) -> float:
        return len(self.items) / self.batch_seconds if self.batch_seconds > 0 else 0.0

    # ------------------------------------------------------------ digests
    def answers_digest(self) -> str:
        """SHA-256 over the canonical outcomes — identical across worker
        counts and across two same-seed runs from equal cache state."""
        payload = json.dumps(
            [
                [
                    it.question,
                    it.result.answer if it.result is not None else "",
                    it.result.attempts if it.result is not None else 0,
                    [str(e) for e in it.result.degraded] if it.result is not None else [],
                    it.cached,
                    it.error,
                    it.shed,
                    round(it.retry_after, 6),
                ]
                for it in self.items
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def span_digest(self) -> str:
        """SHA-256 over per-request span-structure digests, input order."""
        digests = []
        for it in self.items:
            trace = it.trace_or_result_trace()
            digests.append(trace.structure_digest() if trace is not None else "")
        return hashlib.sha256(json.dumps(digests).encode()).hexdigest()

    # ------------------------------------------------------------ rendering
    def render(self, *, show_answers: bool = False) -> str:
        lines: list[str] = []
        for it in self.items:
            if it.shed:
                status = f"SHED    retry_after={it.retry_after:.3f}s"
            elif it.result is None:
                status = f"FAILED  {it.error}"
            else:
                flags = []
                if it.cached:
                    flags.append("cached")
                if it.result.attempts > 1:
                    flags.append(f"attempts={it.result.attempts}")
                flags.extend(str(e) for e in it.result.degraded)
                status = f"{it.result.mode}" + (f"  [{', '.join(flags)}]" if flags else "")
            lines.append(f"  {it.index + 1:>3}. {status}  {it.question[:56]}")
            if show_answers and it.result is not None:
                for answer_line in it.result.answer.splitlines():
                    lines.append(f"       | {answer_line}")
        lines.append(
            f"answered {self.answered_count}/{len(self.items)} "
            f"({self.cached_count} cached) in {self.batch_seconds:.2f}s "
            f"— {self.questions_per_second:.2f} q/s, workers={self.workers}"
        )
        lines.append(
            f"deferred llm tokens: {self.deferred_tokens} "
            f"(vectorized flush {1000 * self.burn_seconds:.1f} ms)"
        )
        if self.decisions is not None:
            admitted = sum(1 for d in self.decisions if d.outcome == ADMIT)
            lines.append(
                f"admission: {admitted} admitted, {self.queued_count} queued, "
                f"{self.shed_count} shed (of {len(self.decisions)})"
            )
        lines.append(f"answers digest: {self.answers_digest()}")
        lines.append(f"span digest:    {self.span_digest()}")
        return "\n".join(lines)


class QueryEngine:
    """Batched question answering over one shared index artifact."""

    default_mode: PipelineMode = PipelineMode.RAG_RERANK

    def __init__(
        self,
        artifact: IndexArtifact,
        config: WorkflowConfig | None = None,
        *,
        fault_injector: FaultInjector | None = None,
        registry: MetricsRegistry | None = None,
        admission: AdmissionController | None = None,
    ) -> None:
        self.artifact = artifact
        self.config = config or WorkflowConfig()
        self.config.validate()
        self.fault_injector = fault_injector
        #: Overload protection; built from config unless injected (tests
        #: inject one with a fake clock).  ``None`` means wide open.
        if admission is not None:
            self.admission: AdmissionController | None = admission
        elif self.config.admission.enabled:
            self.admission = AdmissionController(self.config.admission)
        else:
            self.admission = None
        #: Explicit metrics sink; ``None`` resolves the ambient scope at
        #: the *coordinator*, never inside worker threads (a worker's
        #: thread-local scope would not see the caller's ``use_registry``).
        self.registry = registry
        ec = self.config.engine
        self.binder = ContextBinder()
        self._embedding_lru = LRUCache(ec.embedding_cache_size)
        self._retrieval_lru = LRUCache(ec.retrieval_cache_size)
        self._answer_lru = LRUCache(ec.answer_cache_size)
        self._query_embedding = CachedEmbedding(
            artifact.embedding, self._embedding_lru, self.binder, self._metrics
        )
        self._pipelines: dict[PipelineMode, RAGPipeline] = {}
        self._build_lock = threading.Lock()

    @classmethod
    def from_corpus(
        cls,
        bundle: CorpusBundle | None = None,
        config: WorkflowConfig | None = None,
        *,
        fault_injector: FaultInjector | None = None,
        registry: MetricsRegistry | None = None,
    ) -> "QueryEngine":
        """Convenience: resolve the shared artifact, then build the engine."""
        bundle = bundle or build_default_corpus()
        artifact = get_or_build_index(bundle, config)
        return cls(
            artifact, config, fault_injector=fault_injector, registry=registry
        )

    # ------------------------------------------------------------ plumbing
    def _metrics(self) -> MetricsRegistry:
        """The registry for the *current* call: request-scoped handle
        first (worker threads), explicit engine handle, then ambient."""
        ctx = self.binder.ctx
        if ctx is not None and ctx.registry is not None:
            return ctx.registry
        if self.registry is not None:
            return self.registry
        return get_registry()

    def _serving_store(self, mode: PipelineMode):
        """The mutable store a pipeline for ``mode`` retrieves from.

        Subclasses hook here: the sharded engine binds the forked store
        to its request plumbing (context binder for scatter spans,
        request-scoped metrics).
        """
        if mode is PipelineMode.BASELINE:
            return None
        return self.artifact.fork_store(embedding=self._query_embedding)

    def pipeline(self, mode: str | PipelineMode | None = None) -> RAGPipeline:
        """The engine's pipeline for ``mode``, built once and shared."""
        mode = PipelineMode.coerce(mode) if mode is not None else self.default_mode
        with self._build_lock:
            existing = self._pipelines.get(mode)
            if existing is not None:
                return existing
            store = self._serving_store(mode)
            pipeline = pipeline_from_artifact(
                self.artifact,
                self.config,
                mode=mode,
                fault_injector=self.fault_injector,
                store=store,
                retriever_wrapper=lambda r: CachingRetriever(
                    r, self._retrieval_lru, self.binder, self._metrics
                ),
            )
            self._pipelines[mode] = pipeline
            return pipeline

    def clear_query_caches(self) -> None:
        """Drop answer/retrieval/embedding caches (call after mutating a
        pipeline's store, e.g. feeding history into the RAG database)."""
        self._answer_lru.clear()
        self._retrieval_lru.clear()
        self._embedding_lru.clear()

    def cache_sizes(self) -> dict:
        return {
            "answer": len(self._answer_lru),
            "retrieval": len(self._retrieval_lru),
            "embedding": len(self._embedding_lru),
        }

    def _answer_key(self, question: str, mode: PipelineMode) -> tuple:
        return (_question_digest(question), str(mode), self.artifact.digest)

    def _cache_answers(self) -> bool:
        # Fault injection is per-call state; serving a cached answer
        # would silently skip scheduled faults, so chaos builds bypass.
        return self.config.engine.answer_cache_size > 0 and self.fault_injector is None

    def _replay(self, question: str, mode: PipelineMode, payload: _CachedAnswer) -> PipelineResult:
        """Materialize a cached answer: fresh root span, no llm child."""
        tracer = Tracer()
        with tracer.trace(
            "pipeline", mode=str(mode), model=payload.model, cached=True
        ) as trace:
            tracer.event("cache:answer-hit")
        return PipelineResult(
            question=question,
            answer=payload.answer,
            mode=mode,
            model=payload.model,
            contexts=list(payload.contexts),
            candidates=list(payload.candidates),
            prompt=payload.prompt,
            completion=payload.completion,
            attempts=payload.attempts,
            degraded=list(payload.degraded),
            trace=trace,
        )

    # ------------------------------------------------------------ sequential
    def answer(
        self,
        question: str,
        *,
        mode: str | PipelineMode | None = None,
        ctx: RequestContext | None = None,
    ) -> PipelineResult:
        """Answer one question through the shared artifact and caches."""
        mode = PipelineMode.coerce(mode) if mode is not None else self.default_mode
        registry = (
            ctx.registry
            if ctx is not None and ctx.registry is not None
            else (self.registry if self.registry is not None else get_registry())
        )
        registry.counter("repro.engine.requests").inc()
        if self.admission is not None:
            # Sheds raise OverloadedError (retry_safe) before any work.
            self.admission.admit_one(registry=registry)
        key = self._answer_key(question, mode)
        if self._cache_answers():
            hit = self._answer_lru.peek(key)
            if hit is not None:
                registry.counter("repro.engine.answer_cache.hits").inc()
                self._answer_lru.touch(key)
                return self._replay(question, mode, hit)
            registry.counter("repro.engine.answer_cache.misses").inc()
        pipeline = self.pipeline(mode)
        if ctx is None:
            ctx = RequestContext.create(
                registry=registry,
                deadline=(
                    Deadline(pipeline.deadline_seconds)
                    if pipeline.deadline_seconds is not None
                    else None
                ),
            )
        previous = self.binder.ctx
        self.binder.ctx = ctx
        try:
            result = pipeline.answer(question, ctx=ctx)
        finally:
            self.binder.ctx = previous
        if self._cache_answers():
            self._answer_lru.put(key, _CachedAnswer.from_result(result))
        return result

    # ------------------------------------------------------------ batched
    def _shed_item(self, index: int, question: str, decision: AdmissionDecision) -> BatchItem:
        """A rejected request's record: no work ran, but the rejection is
        traced so shed requests show up in span digests like any other."""
        tracer = Tracer()
        with tracer.trace("admission", outcome=SHED) as trace:
            tracer.event(
                "admission:shed",
                client=decision.client,
                retry_after=round(decision.retry_after, 6),
            )
        return BatchItem(
            index=index,
            question=question,
            result=None,
            error=(
                f"OverloadedError: shed by admission "
                f"(retry after {decision.retry_after:.3f}s)"
            ),
            shed=True,
            retry_after=decision.retry_after,
            trace=trace,
        )

    def answer_many(
        self,
        questions: list[str],
        *,
        mode: str | PipelineMode | None = None,
        workers: int | None = None,
        seed: int = 0,
        arrivals: list[float] | None = None,
        client_ids: list[str] | None = None,
    ) -> BatchResult:
        """Answer a batch deterministically over a bounded worker pool.

        The scheduler runs three phases: (1) the coordinator walks the
        questions in order, serving answer-cache hits and deduplicating
        repeats so each unique question is computed exactly once;
        (2) unique misses run on the pool, each under its own
        :class:`RequestContext` (tracer, seeded RNG, deferred cache
        transaction, shared burn collector); (3) after the barrier the
        coordinator replays cache commits in submission order and spends
        the deferred token burn through one vectorized kernel.

        Per-question pipeline failures are recorded on their
        :class:`BatchItem` — a batch never aborts mid-flight.

        When admission is enabled, phase (0) walks the admission ladder
        over ``arrivals`` (simulated offsets, default all 0.0 — one
        burst) and ``client_ids`` first: shed requests get a
        :class:`BatchItem` with ``shed=True`` and never reach the
        scheduler; queued requests run with an ``admission:queued`` span
        event; the worker pool is clamped to the AIMD limit.
        """
        mode = PipelineMode.coerce(mode) if mode is not None else self.default_mode
        workers = workers if workers is not None else self.config.engine.batch_workers
        if workers <= 0:
            raise ConfigurationError(f"workers must be positive, got {workers}")
        n = len(questions)
        if arrivals is not None and len(arrivals) != n:
            raise ConfigurationError(
                f"arrivals has {len(arrivals)} entries for {n} questions"
            )
        if client_ids is not None and len(client_ids) != n:
            raise ConfigurationError(
                f"client_ids has {len(client_ids)} entries for {n} questions"
            )
        registry = self.registry if self.registry is not None else get_registry()
        registry.counter("repro.engine.batches").inc()
        registry.counter("repro.engine.batch_requests").inc(len(questions))

        decisions: list[AdmissionDecision] | None = None
        if self.admission is not None:
            decisions = self.admission.admit_batch(
                [0.0] * n if arrivals is None else [float(t) for t in arrivals],
                ["default"] * n if client_ids is None else list(client_ids),
                registry=registry,
            )
            workers = max(1, min(workers, self.admission.concurrency_limit))
            registry.gauge("repro.admission.concurrency_limit").set(
                float(self.admission.concurrency_limit)
            )
        pipeline = self.pipeline(mode)  # built on the coordinator, shared
        collector = TokenBurnCollector()
        use_cache = self._cache_answers()
        started = time.perf_counter()

        items: list[BatchItem | None] = [None] * n
        jobs: list[tuple[int, str, tuple]] = []  # (input index, question, key)
        primary_of: dict[tuple, int] = {}
        duplicates: list[tuple[int, int]] = []  # (input index, primary index)
        hit_keys: dict[int, tuple] = {}
        for i, question in enumerate(questions):
            if decisions is not None and decisions[i].outcome == SHED:
                # Shed before the caches: a rejected request consumes
                # nothing — no token, no dedupe slot, no LRU touch.
                items[i] = self._shed_item(i, question, decisions[i])
                continue
            key = self._answer_key(question, mode)
            if use_cache:
                payload = self._answer_lru.peek(key)
                if payload is not None:
                    registry.counter("repro.engine.answer_cache.hits").inc()
                    hit_keys[i] = key
                    items[i] = BatchItem(
                        index=i,
                        question=question,
                        result=self._replay(question, mode, payload),
                        cached=True,
                    )
                    continue
                registry.counter("repro.engine.answer_cache.misses").inc()
            first = primary_of.get(key)
            if first is not None:
                registry.counter("repro.engine.batch_deduped").inc()
                duplicates.append((i, first))
                continue
            primary_of[key] = i
            jobs.append((i, question, key))

        deadline_seconds = pipeline.deadline_seconds

        def run_one(index: int, question: str):
            ctx = RequestContext.create(
                request_id=f"batch{seed}-{index:05d}",
                seed=derive_seed("engine-batch", seed, index),
                registry=registry,
                deadline=(
                    Deadline(deadline_seconds) if deadline_seconds is not None else None
                ),
                burn_collector=collector,
            )
            txn = CacheTransaction()
            ctx.scratch["cache_txn"] = txn
            self.binder.ctx = ctx
            try:
                try:
                    result: PipelineResult | None = pipeline.answer(question, ctx=ctx)
                    error = ""
                except ReproError as exc:
                    result = None
                    error = f"{type(exc).__name__}: {exc}"
            finally:
                self.binder.ctx = None
            return result, error, txn

        outcomes: dict[int, tuple[PipelineResult | None, str, CacheTransaction]] = {}
        if jobs:
            if workers == 1:
                for i, question, _ in jobs:
                    outcomes[i] = run_one(i, question)
            else:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        i: pool.submit(run_one, i, question) for i, question, _ in jobs
                    }
                    for i, future in futures.items():
                        outcomes[i] = future.result()

        deferred_tokens, _ = collector.pending()
        burn_seconds = collector.flush(lanes=self.config.engine.burn_lanes)
        registry.counter("repro.engine.deferred_tokens").inc(deferred_tokens)

        # Commit phase: strict input order, so the cache state future
        # requests observe is independent of worker count.
        key_of_job = {i: key for i, _, key in jobs}
        for i in range(n):
            hit_key = hit_keys.get(i)
            if hit_key is not None:
                self._answer_lru.touch(hit_key)
                continue
            outcome = outcomes.get(i)
            if outcome is None:
                continue  # duplicate; filled below
            result, error, txn = outcome
            txn.commit()
            if result is not None and use_cache:
                self._answer_lru.put(key_of_job[i], _CachedAnswer.from_result(result))
            items[i] = BatchItem(
                index=i, question=questions[i], result=result, error=error
            )
        for i, first in duplicates:
            primary = items[first]
            assert primary is not None
            items[i] = BatchItem(
                index=i,
                question=questions[i],
                result=primary.result,
                cached=True,
                error=primary.error,
            )

        elapsed = time.perf_counter() - started
        final_items = [it for it in items if it is not None]
        assert len(final_items) == n, "scheduler dropped a request"
        registry.counter("repro.engine.batch_answers").inc(
            sum(1 for it in final_items if it.answered)
        )

        if decisions is not None:
            assert self.admission is not None
            for d in decisions:
                it = final_items[d.index]
                if d.outcome == QUEUE:
                    base = it.result.trace if it.result is not None else None
                    if base is not None and base.root.end is not None:
                        # Annotate a copy: dedupe duplicates share the
                        # result trace with their primary, which must not
                        # inherit this item's queueing.  at=end keeps the
                        # closed root span well-formed.
                        queued = Trace.from_dict(base.to_dict())
                        queued.root.add_event(
                            "admission:queued",
                            at=queued.root.end,
                            queue_wait=round(d.queue_wait, 6),
                        )
                        it.trace = queued
                # AIMD feedback in input order, so the limit two batches
                # from now is as reproducible as this batch's answers.
                if d.outcome in (ADMIT, QUEUE):
                    self.admission.observe_outcome(
                        it.answered, it.error, registry=registry
                    )
            registry.gauge("repro.admission.concurrency_limit").set(
                float(self.admission.concurrency_limit)
            )

        return BatchResult(
            mode=mode,
            workers=workers,
            seed=seed,
            items=final_items,
            decisions=decisions,
            batch_seconds=elapsed,
            burn_seconds=burn_seconds,
            deferred_tokens=deferred_tokens,
            cache_sizes=self.cache_sizes(),
        )
