"""The query engine: one artifact, per-mode pipelines, shared caches.

A :class:`QueryEngine` owns one immutable
:class:`~repro.index.IndexArtifact`, lazily-built pipelines for each
mode, and the answer/retrieval/embedding LRU caches.  Serving goes
through the request lifecycle in :mod:`repro.service`:
:meth:`QueryEngine.answer` and :meth:`QueryEngine.answer_many` are thin
wrappers that route every request — one question is a batch of one —
through the engine's :class:`~repro.service.ReproService` and its
interceptor chain (``admission → dedupe → answer-cache → tracing →
execute → record``).

Determinism contract (see DESIGN.md §8 and §12): everything
digest-relevant is a pure function of (artifact digest, question list,
mode, seed, cache state at batch start).  Worker count and thread
scheduling may only move wall-clock numbers, which the digests exclude
by construction.
"""

from __future__ import annotations

import threading

from repro.admission import AdmissionController
from repro.config import WorkflowConfig
from repro.context import RequestContext
from repro.corpus.builder import CorpusBundle, build_default_corpus
from repro.engine.caches import CachedEmbedding, CachingRetriever, ContextBinder, LRUCache
from repro.index import IndexArtifact, get_or_build_index
from repro.observability import MetricsRegistry, get_registry
from repro.pipeline.rag import PipelineResult, RAGPipeline, pipeline_from_artifact
from repro.pipeline.types import PipelineMode
from repro.resilience.faults import FaultInjector

# Historical home of the batch types; they now live with the lifecycle.
from repro.service.lifecycle import BatchItem, BatchResult

__all__ = ["BatchItem", "BatchResult", "QueryEngine"]


class QueryEngine:
    """Batched question answering over one shared index artifact."""

    default_mode: PipelineMode = PipelineMode.RAG_RERANK

    def __init__(
        self,
        artifact: IndexArtifact,
        config: WorkflowConfig | None = None,
        *,
        fault_injector: FaultInjector | None = None,
        registry: MetricsRegistry | None = None,
        admission: AdmissionController | None = None,
    ) -> None:
        self.artifact = artifact
        self.config = config or WorkflowConfig()
        self.config.validate()
        self.fault_injector = fault_injector
        #: Overload protection; built from config unless injected (tests
        #: inject one with a fake clock).  ``None`` means wide open.
        if admission is not None:
            self.admission: AdmissionController | None = admission
        elif self.config.admission.enabled:
            self.admission = AdmissionController(self.config.admission)
        else:
            self.admission = None
        #: Explicit metrics sink; ``None`` resolves the ambient scope at
        #: the *coordinator*, never inside worker threads (a worker's
        #: thread-local scope would not see the caller's ``use_registry``).
        self.registry = registry
        ec = self.config.engine
        self.binder = ContextBinder()
        self._embedding_lru = LRUCache(ec.embedding_cache_size)
        self._retrieval_lru = LRUCache(ec.retrieval_cache_size)
        self._answer_lru = LRUCache(ec.answer_cache_size)
        self._query_embedding = CachedEmbedding(
            artifact.embedding, self._embedding_lru, self.binder, self._metrics
        )
        self._pipelines: dict[PipelineMode, RAGPipeline] = {}
        self._build_lock = threading.Lock()
        self._service = None
        #: Monotonic artifact generation: 0 at construction, +1 per
        #: :meth:`swap_artifact`.  Purely observational — answer-cache
        #: keys carry the artifact digest, not the epoch.
        self.epoch = 0
        #: Accounting dict from the most recent cache invalidation
        #: (:func:`repro.ingest.invalidation.invalidate_engine_caches`),
        #: surfaced in :class:`~repro.ingest.lifecycle.IngestReport`.
        self._last_invalidation: dict = {}

    @classmethod
    def from_corpus(
        cls,
        bundle: CorpusBundle | None = None,
        config: WorkflowConfig | None = None,
        *,
        fault_injector: FaultInjector | None = None,
        registry: MetricsRegistry | None = None,
    ) -> "QueryEngine":
        """Convenience: resolve the shared artifact, then build the engine."""
        bundle = bundle or build_default_corpus()
        artifact = get_or_build_index(bundle, config)
        return cls(
            artifact, config, fault_injector=fault_injector, registry=registry
        )

    # ------------------------------------------------------------ plumbing
    @property
    def service(self):
        """The engine's :class:`~repro.service.ReproService` — the one
        scheduler every request (single or batch) flows through."""
        if self._service is None:
            from repro.service import ReproService

            self._service = ReproService.for_engine(self)
        return self._service

    def _metrics(self) -> MetricsRegistry:
        """The registry for the *current* call: request-scoped handle
        first (worker threads), explicit engine handle, then ambient."""
        ctx = self.binder.ctx
        if ctx is not None and ctx.registry is not None:
            return ctx.registry
        if self.registry is not None:
            return self.registry
        return get_registry()

    def _serving_store(self, mode: PipelineMode):
        """The mutable store a pipeline for ``mode`` retrieves from.

        Subclasses hook here: the sharded engine binds the forked store
        to its request plumbing (context binder for scatter spans,
        request-scoped metrics).
        """
        if mode is PipelineMode.BASELINE:
            return None
        return self.artifact.fork_store(embedding=self._query_embedding)

    def pipeline(self, mode: str | PipelineMode | None = None) -> RAGPipeline:
        """The engine's pipeline for ``mode``, built once and shared."""
        mode = PipelineMode.coerce(mode) if mode is not None else self.default_mode
        with self._build_lock:
            existing = self._pipelines.get(mode)
            if existing is not None:
                return existing
            store = self._serving_store(mode)
            pipeline = pipeline_from_artifact(
                self.artifact,
                self.config,
                mode=mode,
                fault_injector=self.fault_injector,
                store=store,
                retriever_wrapper=lambda r: CachingRetriever(
                    r, self._retrieval_lru, self.binder, self._metrics
                ),
            )
            self._pipelines[mode] = pipeline
            return pipeline

    def clear_query_caches(self) -> None:
        """Drop answer/retrieval/embedding caches (call after mutating a
        pipeline's store, e.g. feeding history into the RAG database)."""
        self._answer_lru.clear()
        self._retrieval_lru.clear()
        self._embedding_lru.clear()

    # ------------------------------------------------------------ epochs
    def swap_artifact(self, artifact: IndexArtifact, delta=None) -> bool:
        """Swap the engine onto a new artifact epoch.

        The one sanctioned way serving state changes after construction.
        Under the build lock the engine rebinds its artifact, drops the
        per-mode pipelines (rebuilt lazily over the new store), and
        rebinds query embedding to the new artifact's model; the epoch
        counter advances and exactly the affected cache entries are
        invalidated — scoped by ``delta`` (a
        :class:`~repro.ingest.delta.CorpusDelta`) when
        ``config.ingest.scoped_invalidation`` is on, wholesale
        otherwise.

        A no-op swap (same digest) returns ``False`` and changes
        nothing: no epoch advance, no cache invalidation, no pipeline
        rebuilds.
        """
        from repro.ingest.invalidation import invalidate_engine_caches

        with self._build_lock:
            if artifact.digest == self.artifact.digest:
                return False
            previous = self.artifact
            self.artifact = artifact
            self._pipelines.clear()
            self._query_embedding = CachedEmbedding(
                artifact.embedding, self._embedding_lru, self.binder, self._metrics
            )
            self.epoch += 1
        embedding_preserved = (
            artifact.embedding.name == previous.embedding.name
            and artifact.embedding.dim == previous.embedding.dim
        )
        scoped = delta if self.config.ingest.scoped_invalidation else None
        self._last_invalidation = invalidate_engine_caches(
            self,
            scoped,
            stale_digest=previous.digest,
            embedding_preserved=embedding_preserved,
        )
        self._metrics().counter("repro.ingest.epoch_swaps").inc()
        return True

    def cache_sizes(self) -> dict:
        return {
            "answer": len(self._answer_lru),
            "retrieval": len(self._retrieval_lru),
            "embedding": len(self._embedding_lru),
        }

    # ------------------------------------------------------------ serving
    def answer(
        self,
        question: str,
        *,
        mode: str | PipelineMode | None = None,
        ctx: RequestContext | None = None,
    ) -> PipelineResult:
        """Answer one question — a batch of one through the service chain."""
        return self.service.answer(question, mode=mode, ctx=ctx)

    def answer_many(
        self,
        questions: list[str],
        *,
        mode: str | PipelineMode | None = None,
        workers: int | None = None,
        seed: int = 0,
        arrivals: list[float] | None = None,
        client_ids: list[str] | None = None,
    ) -> BatchResult:
        """Answer a batch through the service chain's deterministic
        scheduler (see :meth:`repro.service.ReproService.answer_many`)."""
        return self.service.answer_many(
            questions,
            mode=mode,
            workers=workers,
            seed=seed,
            arrivals=arrivals,
            client_ids=client_ids,
        )
