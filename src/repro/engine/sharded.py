"""Scatter-gather serving over a sharded index.

:class:`ShardedQueryEngine` is a :class:`~repro.engine.engine.QueryEngine`
whose artifact is a :class:`~repro.index.sharding.ShardedIndexArtifact`.
Everything above retrieval is inherited unchanged — the batch
coordinator, cache-transaction replay, admission ladder, and burn flush
from PRs 3–4 neither know nor care that the store underneath fans out —
which is exactly the digest argument: answers remain a pure function of
(composite digest, questions, mode, seed, cache state), and the merge
order ``(-score, doc_id)`` makes retrieval itself partition-invariant.

The only subclass responsibilities are (a) binding the forked sharded
store to the engine's request plumbing, so scatter spans land on the
active request's tracer and ``repro.shard.*`` counters land in the
request's registry scope, and (b) resolving the composite artifact in
:meth:`from_corpus`.
"""

from __future__ import annotations

from repro.config import WorkflowConfig
from repro.corpus.builder import CorpusBundle, build_default_corpus
from repro.engine.engine import QueryEngine
from repro.errors import ConfigurationError
from repro.index.sharding import ShardedIndexArtifact, get_or_build_sharded_index
from repro.observability import MetricsRegistry
from repro.pipeline.types import PipelineMode
from repro.replication import HealthTracker
from repro.resilience.faults import FaultInjector


class ShardedQueryEngine(QueryEngine):
    """Batched question answering over N index shards."""

    def __init__(
        self,
        artifact: ShardedIndexArtifact,
        config: WorkflowConfig | None = None,
        **kwargs,
    ) -> None:
        if not isinstance(artifact, ShardedIndexArtifact):
            raise ConfigurationError(
                "ShardedQueryEngine requires a ShardedIndexArtifact; "
                "use QueryEngine for monolithic artifacts"
            )
        super().__init__(artifact, config, **kwargs)
        # One tracker across every pipeline mode: health is a property
        # of the serving copies, not of the mode that probed them.
        self.replica_health = HealthTracker(
            self.config.replication, registry_fn=self._metrics
        )

    @classmethod
    def from_corpus(
        cls,
        bundle: CorpusBundle | None = None,
        config: WorkflowConfig | None = None,
        *,
        fault_injector: FaultInjector | None = None,
        registry: MetricsRegistry | None = None,
    ) -> "ShardedQueryEngine":
        """Resolve the shared sharded artifact, then build the engine.

        ``config.sharding.num_shards`` must be >= 1; callers that want
        the monolithic path use :class:`QueryEngine` (the
        :func:`repro.api.open_engine` facade picks for you).
        """
        config = config or WorkflowConfig()
        if config.sharding.num_shards <= 0:
            raise ConfigurationError(
                "ShardedQueryEngine.from_corpus requires sharding.num_shards >= 1"
            )
        bundle = bundle or build_default_corpus()
        artifact = get_or_build_sharded_index(bundle, config)
        return cls(
            artifact, config, fault_injector=fault_injector, registry=registry
        )

    @property
    def num_shards(self) -> int:
        return self.artifact.num_shards

    def _serving_store(self, mode: PipelineMode):
        if mode is PipelineMode.BASELINE:
            return None
        fork = self.artifact.fork_store(embedding=self._query_embedding)
        store = fork.with_serving_context(
            binder=self.binder,
            registry_fn=self._metrics,
            scatter_workers=self.config.sharding.scatter_workers,
        )
        wrapper = self._replica_fault_wrapper()
        rep = self.config.replication
        if rep.replicas > 1 or rep.require_full_coverage or wrapper is not None:
            store = store.with_replication(
                rep, health=self.replica_health, store_wrapper=wrapper
            )
        return store

    def _replica_fault_wrapper(self):
        """The seeded shard-outage seam for chaos runs.

        When the engine's fault injector carries a ``shard_fault_rate``,
        each shard's *primary* replica is wrapped at site ``shard:N`` —
        modelling a schedule that kills one copy per shard, the regime
        the digest guarantee covers.  Backups stay healthy, so with
        ``replicas >= 2`` every fault is absorbed by failover; with a
        single copy the shard goes dark and coverage degrades.
        """
        injector = self.fault_injector
        if injector is None or injector.config.shard_fault_rate <= 0:
            return None

        def wrap(store, shard_index: int, replica_index: int):
            if replica_index > 0:
                return store
            return injector.wrap_store(store, site=f"shard:{shard_index}")

        return wrap

    def shard_summary(self) -> dict:
        """Shard topology for operators (CLI ``repro metrics``)."""
        artifact: ShardedIndexArtifact = self.artifact
        rep = self.config.replication
        return {
            "num_shards": artifact.num_shards,
            "composite_digest": artifact.digest,
            "epoch": self.epoch,
            "embedding_scope": artifact.fingerprint.get("embedding_scope"),
            "replicas": rep.replicas,
            "hedging": rep.hedging,
            "replica_health": self.replica_health.snapshot(),
            "shards": artifact.shard_summaries(
                replicas=rep.replicas, health=self.replica_health
            ),
        }
