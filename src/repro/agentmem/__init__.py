"""Agentic memory prototype (paper Section III-F: "we are pursuing using
emerging agentic memory systems")."""

from repro.agentmem.memory import AgentMemory, Episode, MemoryNote

__all__ = ["AgentMemory", "Episode", "MemoryNote"]
