"""Agentic memory: episodic store + consolidated long-term notes.

A lightweight implementation of the pattern in the paper's reference
[13] ("Memory matters: the need to improve long-term memory in
LLM-agents"): raw interaction *episodes* accumulate in a bounded
short-term buffer; consolidation distills recurring topics into
long-term :class:`MemoryNote` objects that can be recalled by relevance
to a new question and injected into prompts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HistoryError
from repro.utils.textproc import stemmed_tokens


@dataclass
class Episode:
    """One remembered interaction."""

    question: str
    answer: str
    timestamp: float
    tags: tuple[str, ...] = ()


@dataclass
class MemoryNote:
    """A consolidated long-term memory: topic terms + supporting episodes."""

    topic_terms: tuple[str, ...]
    summary: str
    support: int
    last_seen: float


@dataclass
class AgentMemory:
    """Bounded episodic buffer with topic consolidation and recall."""

    short_term_capacity: int = 32
    consolidation_threshold: int = 3
    episodes: list[Episode] = field(default_factory=list)
    notes: list[MemoryNote] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.short_term_capacity < 1:
            raise HistoryError("short_term_capacity must be >= 1")
        if self.consolidation_threshold < 2:
            raise HistoryError("consolidation_threshold must be >= 2")

    # ------------------------------------------------------------ writing
    def remember(self, question: str, answer: str, *, timestamp: float, tags: tuple[str, ...] = ()) -> Episode:
        ep = Episode(question=question, answer=answer, timestamp=timestamp, tags=tags)
        self.episodes.append(ep)
        if len(self.episodes) > self.short_term_capacity:
            self.consolidate()
            # Evict oldest episodes beyond capacity regardless of
            # consolidation outcome (the buffer is hard-bounded).
            del self.episodes[: len(self.episodes) - self.short_term_capacity]
        return ep

    def consolidate(self) -> int:
        """Distill recurring topics among episodes into notes.

        Groups episodes by their dominant stemmed terms; any term shared
        by at least ``consolidation_threshold`` episodes becomes (or
        refreshes) a note summarizing the most recent answer for it.
        Returns the number of notes created or refreshed.
        """
        by_term: dict[str, list[Episode]] = {}
        for ep in self.episodes:
            for term in set(stemmed_tokens(ep.question)):
                if len(term) >= 4:
                    by_term.setdefault(term, []).append(ep)
        updated = 0
        for term, eps in by_term.items():
            if len(eps) < self.consolidation_threshold:
                continue
            latest = max(eps, key=lambda e: e.timestamp)
            summary = f"Recurring topic '{term}': latest answer — {latest.answer[:240]}"
            existing = next(
                (n for n in self.notes if term in n.topic_terms), None
            )
            if existing is None:
                self.notes.append(MemoryNote(
                    topic_terms=(term,), summary=summary,
                    support=len(eps), last_seen=latest.timestamp,
                ))
            else:
                existing.support = max(existing.support, len(eps))
                existing.last_seen = max(existing.last_seen, latest.timestamp)
                existing.summary = summary
            updated += 1
        return updated

    # ------------------------------------------------------------ recall
    def recall(self, question: str, *, k: int = 3) -> list[MemoryNote]:
        """Notes most relevant to ``question`` (term overlap, recency tiebreak)."""
        q_terms = set(stemmed_tokens(question))
        scored = [
            (len(q_terms & set(n.topic_terms)), n.last_seen, i)
            for i, n in enumerate(self.notes)
        ]
        scored.sort(reverse=True)
        return [self.notes[i] for hits, _, i in scored[:k] if hits > 0]

    def recall_episodes(self, question: str, *, k: int = 3) -> list[Episode]:
        """Raw episodes most similar to ``question`` by term overlap."""
        q_terms = set(stemmed_tokens(question))
        scored = sorted(
            (
                (len(q_terms & set(stemmed_tokens(ep.question))), ep.timestamp, i)
                for i, ep in enumerate(self.episodes)
            ),
            reverse=True,
        )
        return [self.episodes[i] for hits, _, i in scored[:k] if hits > 0]
