"""Command-line tools for the PETSc assistant stack.

The paper (Section III): "For developers, we could even provide command
line tools and integrated development environment (IDE) extensions to
facilitate various use cases."  This module is that CLI:

``python -m repro ask "question..."``
    Answer one question through the selected pipeline mode.

``python -m repro evaluate``
    Run the 37-question benchmark for one mode and print the histogram.

``python -m repro compare``
    Run all three modes and print the Fig. 6 comparison panels.

``python -m repro corpus --out DIR``
    Write the synthetic PETSc docs tree to disk.

``python -m repro casestudy {1,2}``
    Reproduce one of the paper's case studies (Figs. 7–8).

``python -m repro chaos --seed N --transient-rate R``
    Run the benchmark under seeded fault injection and report the
    answer success rate, degradation mix, and reproducibility digests.

``python -m repro metrics [--json]``
    Drive a small benchmark workload against a fresh metrics registry
    and print the resulting instruments plus deterministic digests
    (same seed → byte-identical output).

``python -m repro batch QUESTIONS.txt``
    Answer a file of questions (one per line, or a JSON array) through
    the batched query engine and print per-question outcomes plus
    aggregate cache-hit and throughput statistics.

All question-answering commands serve through a shared
:class:`~repro.engine.QueryEngine` over one cached index artifact, so a
multi-command process builds the index exactly once.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import Sequence

from pathlib import Path

from repro.config import RetrievalConfig, WorkflowConfig
from repro.corpus import CorpusBuilder, build_default_corpus
from repro.engine import QueryEngine
from repro.errors import ReproError
from repro.embeddings import EMBEDDING_MODEL_NAMES
from repro.evaluation import (
    BlindGrader,
    compare_modes,
    render_comparison,
    render_score_histogram,
    run_chaos_experiment,
    run_experiment,
)
from repro.evaluation.casestudies import CASE_STUDY_1_QID, CASE_STUDY_2_QID, run_case_study
from repro.evaluation.benchmark import krylov_benchmark
from repro.index import get_or_build_index
from repro.llm import CHAT_MODEL_NAMES
from repro.observability import MetricsRegistry, use_registry
from repro.pipeline.rag import pipeline_from_artifact
from repro.resilience import FaultConfig, FaultInjector
from repro.retrieval import ManualPageKeywordSearch

_MODES = ("baseline", "rag", "rag+rerank")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PETSc AI assistant reproduction — command line tools",
    )
    parser.add_argument(
        "--model", default="gpt-4o-sim", choices=CHAT_MODEL_NAMES, help="chat model"
    )
    parser.add_argument(
        "--embedding", default="petsc-embed-large", choices=EMBEDDING_MODEL_NAMES,
        help="embedding model",
    )
    parser.add_argument(
        "--mode", default="rag+rerank", choices=_MODES, help="pipeline mode"
    )
    parser.add_argument(
        "--fast", action="store_true", help="disable the LLM latency simulation"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ask = sub.add_parser("ask", help="answer one question")
    ask.add_argument("question", help="the question text")
    ask.add_argument("--show-contexts", action="store_true")
    ask.add_argument(
        "--trace", action="store_true",
        help="render the span tree of the invocation to stderr",
    )

    sub.add_parser("evaluate", help="run the benchmark for --mode")
    sub.add_parser("compare", help="run all three modes and print Fig. 6 panels")

    corpus = sub.add_parser("corpus", help="write the docs tree to disk")
    corpus.add_argument("--out", required=True, help="output directory")

    case = sub.add_parser("casestudy", help="reproduce a paper case study")
    case.add_argument("number", type=int, choices=(1, 2))

    chaos = sub.add_parser("chaos", help="run the benchmark under injected faults")
    chaos.add_argument("--seed", type=int, default=0, help="fault-schedule seed")
    chaos.add_argument(
        "--transient-rate", type=float, default=0.3,
        help="per-call probability of an injected transient error",
    )
    chaos.add_argument(
        "--latency-rate", type=float, default=0.0,
        help="per-call probability of an injected latency spike",
    )
    chaos.add_argument(
        "--truncate-rate", type=float, default=0.0,
        help="per-call probability of a truncated LLM reply",
    )

    metrics = sub.add_parser(
        "metrics", help="run a workload and print the metrics registry"
    )
    metrics.add_argument("--json", action="store_true", help="machine-readable output")
    metrics.add_argument(
        "--questions", type=int, default=8,
        help="benchmark questions to drive through the pipeline",
    )
    metrics.add_argument("--seed", type=int, default=0, help="fault-schedule seed")
    metrics.add_argument(
        "--transient-rate", type=float, default=0.0,
        help="per-call probability of an injected transient error",
    )

    batch = sub.add_parser(
        "batch", help="answer a file of questions through the batched engine"
    )
    batch.add_argument(
        "path", help="questions file: one per line, or a JSON array of strings"
    )
    batch.add_argument(
        "--workers", type=int, default=None,
        help="worker threads (default: engine config)",
    )
    batch.add_argument("--seed", type=int, default=0, help="per-request RNG seed")
    batch.add_argument("--show-answers", action="store_true")

    return parser


def _config(args: argparse.Namespace) -> WorkflowConfig:
    return WorkflowConfig(
        chat_model=args.model,
        retrieval=RetrievalConfig(embedding_model=args.embedding),
        iterations_per_token=0 if args.fast else None,
    )


def _grader(bundle) -> BlindGrader:
    keyword = ManualPageKeywordSearch(bundle)
    return BlindGrader(
        registry=bundle.registry, known_identifiers=keyword.known_identifiers()
    )


def cmd_ask(args: argparse.Namespace) -> int:
    engine = QueryEngine.from_corpus(config=_config(args))
    result = engine.answer(args.question, mode=args.mode)
    print(result.answer)
    if args.show_contexts and result.contexts:
        print("\n-- contexts --", file=sys.stderr)
        for c in result.contexts:
            print(f"  {c.score:.3f}  {c.document.metadata.get('source')}", file=sys.stderr)
    resilience_note = f" | attempts {result.attempts}" if result.attempts > 1 else ""
    if result.degraded:
        resilience_note += f" | degraded: {','.join(result.degraded)}"
    print(
        f"\n[{result.mode} | {result.model} | rag {1000 * result.rag_seconds:.1f} ms | "
        f"llm {1000 * result.llm_seconds:.1f} ms{resilience_note}]",
        file=sys.stderr,
    )
    if args.trace and result.trace is not None:
        print("\n-- trace --", file=sys.stderr)
        print(result.trace.render(), file=sys.stderr)
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    bundle = build_default_corpus()
    engine = QueryEngine.from_corpus(bundle, _config(args))
    run = run_experiment(engine.pipeline(args.mode), _grader(bundle))
    print(render_score_histogram(run, title=f"{args.mode} ({args.model} + {args.embedding})"))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    bundle = build_default_corpus()
    grader = _grader(bundle)
    # One engine serves all three modes from the same index artifact.
    engine = QueryEngine.from_corpus(bundle, _config(args))
    runs = {
        mode: run_experiment(engine.pipeline(mode), grader) for mode in _MODES
    }
    print(render_comparison(compare_modes(runs["baseline"], runs["rag"]),
                            title="Fig. 6a — baseline vs RAG"))
    print()
    print(render_comparison(compare_modes(runs["baseline"], runs["rag+rerank"]),
                            title="Fig. 6b — baseline vs reranking-enhanced RAG"))
    print()
    print(render_comparison(compare_modes(runs["rag"], runs["rag+rerank"]),
                            title="Fig. 6c — RAG vs reranking-enhanced RAG"))
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    root = CorpusBuilder().write_tree(args.out)
    n = sum(1 for _ in root.rglob("*.md"))
    print(f"wrote {n} Markdown files under {root}")
    return 0


def cmd_casestudy(args: argparse.Namespace) -> int:
    bundle = build_default_corpus()
    engine = QueryEngine.from_corpus(bundle, _config(args))
    rag = engine.pipeline("rag")
    rerank = engine.pipeline("rag+rerank")
    qid = CASE_STUDY_1_QID if args.number == 1 else CASE_STUDY_2_QID
    res = run_case_study(qid, rag, rerank, _grader(bundle))
    print(f"Case Study {args.number} (paper Fig. {6 + args.number})")
    print(res.render())
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    bundle = build_default_corpus()
    fault_config = FaultConfig(
        transient_rate=args.transient_rate,
        latency_spike_rate=args.latency_rate,
        truncation_rate=args.truncate_rate,
    )
    run = run_chaos_experiment(
        bundle, _config(args), seed=args.seed, fault_config=fault_config, mode=args.mode
    )
    print(run.render(title=f"chaos sweep — {args.mode} ({args.model})"))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    bundle = build_default_corpus()
    injector = (
        FaultInjector(args.seed, FaultConfig(transient_rate=args.transient_rate))
        if args.transient_rate > 0
        else None
    )
    cfg = _config(args)
    # Resolve the artifact *before* scoping the registry: index build /
    # cache counters vary with process history (first call builds,
    # later calls hit), and folding them into the measured registry
    # would break the same-workload digest-equality guarantee.
    artifact = get_or_build_index(bundle, cfg)
    registry = MetricsRegistry()
    traces = []
    with use_registry(registry):
        pipeline = pipeline_from_artifact(
            artifact, cfg, mode=args.mode, fault_injector=injector
        )
        for q in krylov_benchmark()[: args.questions]:
            try:
                result = pipeline.answer(q.text)
            except ReproError:
                continue
            if result.trace is not None:
                traces.append(result.trace)
    span_counts: dict[str, int] = {}
    for trace in traces:
        for name, n in trace.span_counts().items():
            span_counts[name] = span_counts.get(name, 0) + n
    span_digest = hashlib.sha256(
        json.dumps([t.structure_digest() for t in traces]).encode()
    ).hexdigest()
    if args.json:
        payload = {
            "workload": {
                "mode": args.mode,
                "model": args.model,
                "questions": args.questions,
                "seed": args.seed,
                "transient_rate": args.transient_rate,
            },
            "digest": registry.digest(),
            "span_digest": span_digest,
            "spans": dict(sorted(span_counts.items())),
            "metrics": registry.deterministic_view(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(registry.render_text())
        print(f"\nspans: {dict(sorted(span_counts.items()))}")
        print(f"metrics digest: {registry.digest()}")
        print(f"span digest:    {span_digest}")
    return 0


def _read_questions(path: str) -> list[str]:
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"cannot read questions file {path}: {exc}") from exc
    stripped = text.lstrip()
    if stripped.startswith("["):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReproError(f"invalid JSON questions file {path}: {exc}") from exc
        if not isinstance(data, list) or not all(isinstance(q, str) for q in data):
            raise ReproError(f"JSON questions file {path} must be an array of strings")
        questions = [q.strip() for q in data if q.strip()]
    else:
        questions = [line.strip() for line in text.splitlines() if line.strip()]
    if not questions:
        raise ReproError(f"questions file {path} is empty")
    return questions


def cmd_batch(args: argparse.Namespace) -> int:
    questions = _read_questions(args.path)
    registry = MetricsRegistry()
    engine = QueryEngine.from_corpus(config=_config(args), registry=registry)
    batch = engine.answer_many(
        questions, mode=args.mode, workers=args.workers, seed=args.seed
    )
    print(batch.render(show_answers=args.show_answers))
    print("cache stats:")
    for cache in ("answer_cache", "retrieval_cache", "embedding_cache"):
        hits = registry.counter(f"repro.engine.{cache}.hits").value
        misses = registry.counter(f"repro.engine.{cache}.misses").value
        total = hits + misses
        rate = f"{hits / total:.1%}" if total else "n/a"
        print(f"  {cache:<18}{hits:>6} hits / {misses:>6} misses  ({rate})")
    return 0 if batch.answered_count == len(batch.items) else 1


_COMMANDS = {
    "ask": cmd_ask,
    "batch": cmd_batch,
    "evaluate": cmd_evaluate,
    "compare": cmd_compare,
    "corpus": cmd_corpus,
    "casestudy": cmd_casestudy,
    "chaos": cmd_chaos,
    "metrics": cmd_metrics,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
