"""Command-line tools for the PETSc assistant stack.

The paper (Section III): "For developers, we could even provide command
line tools and integrated development environment (IDE) extensions to
facilitate various use cases."  This module is that CLI:

``python -m repro ask "question..."``
    Answer one question through the selected pipeline mode.

``python -m repro evaluate``
    Run the 37-question benchmark for one mode and print the histogram.

``python -m repro compare``
    Run all three modes and print the Fig. 6 comparison panels.

``python -m repro corpus --out DIR``
    Write the synthetic PETSc docs tree to disk.

``python -m repro casestudy {1,2}``
    Reproduce one of the paper's case studies (Figs. 7–8).

``python -m repro chaos --seed N --transient-rate R``
    Run the benchmark under seeded fault injection and report the
    answer success rate, degradation mix, and reproducibility digests.

``python -m repro metrics [--json]``
    Drive a small benchmark workload against a fresh metrics registry
    and print the resulting instruments plus deterministic digests
    (same seed → byte-identical output).

``python -m repro batch QUESTIONS.txt``
    Answer a file of questions (one per line, or a JSON array) through
    the batched query engine and print per-question outcomes plus
    aggregate cache-hit and throughput statistics.  With ``--rate`` the
    admission ladder (admit → queue → shed) protects the engine and the
    output reports admitted/queued/shed counts.

``python -m repro recover JOURNAL``
    Recover a crash-safe journal (history store or dead-letter queue),
    keeping the longest intact record prefix and truncating any torn
    tail left by a crash mid-append.

``python -m repro ingest --docs DIR``
    Run the unified ingestion lifecycle against an edited docs tree
    (write one with ``repro corpus --out DIR``, edit pages in place):
    on-disk edits are overlaid onto the corpus, the revised artifact is
    resolved (delta-from-parent when the embedding model supports it),
    the engine swaps onto the new epoch, and exactly the affected cache
    entries are invalidated.  An unedited tree is a detected no-op.
    Prints the :class:`~repro.ingest.IngestReport` summary as JSON.

All question-answering commands serve through the
:class:`~repro.service.ReproService` front door (see
:func:`repro.api.open_service`), over one cached index artifact, so a
multi-command process builds the index exactly once and every request —
single or batch — runs the same interceptor chain.  With the
global ``--shards N`` flag the index is partitioned into N shards built
in parallel and served scatter-gather — answers are byte-identical to
the monolithic path.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import Sequence

from pathlib import Path

from repro.api import open_service, resolve_artifact
from repro.config import (
    AdmissionConfig,
    ReplicationConfig,
    ReproConfig,
    RetrievalConfig,
    ShardingConfig,
)
from repro.corpus import CorpusBuilder, build_default_corpus
from repro.durability import recover_journal, scan_journal
from repro.errors import ReproError
from repro.embeddings import EMBEDDING_MODEL_NAMES
from repro.evaluation import (
    BlindGrader,
    compare_modes,
    render_comparison,
    render_score_histogram,
    run_chaos_experiment,
    run_experiment,
    run_robustness_sweep,
)
from repro.history import InteractionStore
from repro.evaluation.casestudies import CASE_STUDY_1_QID, CASE_STUDY_2_QID, run_case_study
from repro.evaluation.benchmark import krylov_benchmark
from repro.index import ShardedIndexArtifact
from repro.llm import CHAT_MODEL_NAMES
from repro.observability import MetricsRegistry, use_registry
from repro.pipeline.rag import pipeline_from_artifact
from repro.resilience import FaultConfig, FaultInjector
from repro.retrieval import ManualPageKeywordSearch
from repro.service import ReproService

_MODES = ("baseline", "rag", "rag+rerank")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PETSc AI assistant reproduction — command line tools",
    )
    parser.add_argument(
        "--model", default="gpt-4o-sim", choices=CHAT_MODEL_NAMES, help="chat model"
    )
    parser.add_argument(
        "--embedding", default="petsc-embed-large", choices=EMBEDDING_MODEL_NAMES,
        help="embedding model",
    )
    parser.add_argument(
        "--mode", default="rag+rerank", choices=_MODES, help="pipeline mode"
    )
    parser.add_argument(
        "--fast", action="store_true", help="disable the LLM latency simulation"
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="serve through a sharded index with N shards "
             "(0 = monolithic; answers are identical either way)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ask = sub.add_parser("ask", help="answer one question")
    ask.add_argument("question", help="the question text")
    ask.add_argument("--show-contexts", action="store_true")
    ask.add_argument(
        "--trace", action="store_true",
        help="render the span tree of the invocation to stderr",
    )

    sub.add_parser("evaluate", help="run the benchmark for --mode")
    sub.add_parser("compare", help="run all three modes and print Fig. 6 panels")

    corpus = sub.add_parser("corpus", help="write the docs tree to disk")
    corpus.add_argument("--out", required=True, help="output directory")

    case = sub.add_parser("casestudy", help="reproduce a paper case study")
    case.add_argument("number", type=int, choices=(1, 2))

    chaos = sub.add_parser("chaos", help="run the benchmark under injected faults")
    chaos.add_argument("--seed", type=int, default=0, help="fault-schedule seed")
    chaos.add_argument(
        "--transient-rate", type=float, default=0.3,
        help="per-call probability of an injected transient error",
    )
    chaos.add_argument(
        "--latency-rate", type=float, default=0.0,
        help="per-call probability of an injected latency spike",
    )
    chaos.add_argument(
        "--truncate-rate", type=float, default=0.0,
        help="per-call probability of a truncated LLM reply",
    )
    chaos.add_argument(
        "--overload-factor", type=int, default=0,
        help="also run the robustness sweep: an overload burst at this "
             "multiple of admitted capacity plus a torn-write crash recovery "
             "(0 = classic chaos only)",
    )
    chaos.add_argument(
        "--shard-fault-rate", type=float, default=0.25,
        help="per-probe probability that a shard's primary replica fails "
             "(classic runs need --shards >= 1 to have shard sites; the "
             "sweep runs its own sharded phase, 0 disables it)",
    )
    chaos.add_argument(
        "--replicas", type=int, default=2,
        help="serving copies per shard for the replicated scatter "
             "(1 = single copy: shard faults degrade coverage instead "
             "of failing over)",
    )

    metrics = sub.add_parser(
        "metrics", help="run a workload and print the metrics registry"
    )
    metrics.add_argument("--json", action="store_true", help="machine-readable output")
    metrics.add_argument(
        "--questions", type=int, default=8,
        help="benchmark questions to drive through the pipeline",
    )
    metrics.add_argument("--seed", type=int, default=0, help="fault-schedule seed")
    metrics.add_argument(
        "--transient-rate", type=float, default=0.0,
        help="per-call probability of an injected transient error",
    )
    metrics.add_argument(
        "--shard-fault-rate", type=float, default=0.0,
        help="per-probe probability that a shard's primary replica fails "
             "(needs --shards >= 1)",
    )
    metrics.add_argument(
        "--replicas", type=int, default=1,
        help="serving copies per shard (with --shards >= 1); failover and "
             "health counters land in the measured registry",
    )

    batch = sub.add_parser(
        "batch", help="answer a file of questions through the batched engine"
    )
    batch.add_argument(
        "path", help="questions file: one per line, or a JSON array of strings"
    )
    batch.add_argument(
        "--workers", type=int, default=None,
        help="worker threads (default: engine config)",
    )
    batch.add_argument("--seed", type=int, default=0, help="per-request RNG seed")
    batch.add_argument("--show-answers", action="store_true")
    batch.add_argument(
        "--rate", type=float, default=None,
        help="enable admission control at this many requests/second",
    )
    batch.add_argument(
        "--burst", type=int, default=None,
        help="token-bucket burst size (default: ceil of --rate)",
    )
    batch.add_argument(
        "--queue-depth", type=int, default=64,
        help="bounded queue depth before requests shed",
    )
    batch.add_argument(
        "--queue-timeout", type=float, default=4.0,
        help="max simulated seconds a request may wait queued",
    )
    batch.add_argument(
        "--arrival-interval", type=float, default=0.0,
        help="simulated seconds between request arrivals (0 = one burst)",
    )

    ingest = sub.add_parser(
        "ingest",
        help="ingest an edited docs tree through the unified write path",
    )
    ingest.add_argument(
        "--docs", default=None, metavar="DIR",
        help="docs tree with edits to overlay (from `repro corpus --out DIR`); "
             "omit to run a no-op ingest of the unchanged corpus",
    )
    ingest.add_argument(
        "--warm", type=int, default=0, metavar="N",
        help="answer the first N benchmark questions before ingesting, so the "
             "report shows scoped cache invalidation at work",
    )

    recover = sub.add_parser(
        "recover", help="recover a crash-safe journal, dropping any torn tail"
    )
    recover.add_argument("path", help="journal file to recover")
    recover.add_argument(
        "--kind", default="auto", choices=("auto", "history", "dead-letters", "raw"),
        help="journal flavor (auto sniffs the first record)",
    )
    recover.add_argument(
        "--dry-run", action="store_true",
        help="report what recovery would keep without truncating the file",
    )

    return parser


def _config(args: argparse.Namespace) -> ReproConfig:
    return ReproConfig(
        chat_model=args.model,
        retrieval=RetrievalConfig(embedding_model=args.embedding),
        iterations_per_token=0 if args.fast else None,
        sharding=ShardingConfig(num_shards=args.shards),
    )


def _grader(bundle) -> BlindGrader:
    keyword = ManualPageKeywordSearch(bundle)
    return BlindGrader(
        registry=bundle.registry, known_identifiers=keyword.known_identifiers()
    )


def cmd_ask(args: argparse.Namespace) -> int:
    service = open_service(_config(args))
    result = service.answer(args.question, mode=args.mode)
    print(result.answer)
    if args.show_contexts and result.contexts:
        print("\n-- contexts --", file=sys.stderr)
        for c in result.contexts:
            print(f"  {c.score:.3f}  {c.document.metadata.get('source')}", file=sys.stderr)
    resilience_note = f" | attempts {result.attempts}" if result.attempts > 1 else ""
    if result.degraded:
        resilience_note += f" | degraded: {','.join(result.degraded)}"
    if result.coverage < 1.0:
        resilience_note += f" | coverage {result.coverage:.2f}"
    print(
        f"\n[{result.mode} | {result.model} | rag {1000 * result.rag_seconds:.1f} ms | "
        f"llm {1000 * result.llm_seconds:.1f} ms{resilience_note}]",
        file=sys.stderr,
    )
    if args.trace and result.trace is not None:
        print("\n-- trace --", file=sys.stderr)
        print(result.trace.render(), file=sys.stderr)
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    bundle = build_default_corpus()
    service = open_service(_config(args), bundle=bundle)
    run = run_experiment(service, _grader(bundle), mode=args.mode)
    print(render_score_histogram(run, title=f"{args.mode} ({args.model} + {args.embedding})"))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    bundle = build_default_corpus()
    grader = _grader(bundle)
    # One service serves all three modes from the same index artifact.
    service = open_service(_config(args), bundle=bundle)
    runs = {
        mode: run_experiment(service, grader, mode=mode) for mode in _MODES
    }
    print(render_comparison(compare_modes(runs["baseline"], runs["rag"]),
                            title="Fig. 6a — baseline vs RAG"))
    print()
    print(render_comparison(compare_modes(runs["baseline"], runs["rag+rerank"]),
                            title="Fig. 6b — baseline vs reranking-enhanced RAG"))
    print()
    print(render_comparison(compare_modes(runs["rag"], runs["rag+rerank"]),
                            title="Fig. 6c — RAG vs reranking-enhanced RAG"))
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    root = CorpusBuilder().write_tree(args.out)
    n = sum(1 for _ in root.rglob("*.md"))
    print(f"wrote {n} Markdown files under {root}")
    return 0


def cmd_casestudy(args: argparse.Namespace) -> int:
    bundle = build_default_corpus()
    service = open_service(_config(args), bundle=bundle)
    qid = CASE_STUDY_1_QID if args.number == 1 else CASE_STUDY_2_QID
    res = run_case_study(qid, service, _grader(bundle))
    print(f"Case Study {args.number} (paper Fig. {6 + args.number})")
    print(res.render())
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    bundle = build_default_corpus()
    fault_config = FaultConfig(
        transient_rate=args.transient_rate,
        latency_spike_rate=args.latency_rate,
        truncation_rate=args.truncate_rate,
        # Shard sites only exist on the sharded serving path; keep the
        # classic monolithic schedule untouched unless --shards asks.
        shard_fault_rate=args.shard_fault_rate if args.shards > 0 else 0.0,
    )
    cfg = _config(args)
    if args.shards > 0 and args.replicas > 1:
        cfg.replication = ReplicationConfig(replicas=args.replicas, hedging=True)
    title = f"chaos sweep — {args.mode} ({args.model})"
    if args.overload_factor > 0:
        sweep = run_robustness_sweep(
            bundle, cfg, seed=args.seed, fault_config=fault_config,
            mode=args.mode, overload_factor=args.overload_factor,
            shard_fault_rate=args.shard_fault_rate, replicas=args.replicas,
        )
        print(sweep.render(title=title))
        return 0
    run = run_chaos_experiment(
        bundle, cfg, seed=args.seed, fault_config=fault_config, mode=args.mode
    )
    print(run.render(title=title))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    bundle = build_default_corpus()
    injector = (
        FaultInjector(
            args.seed,
            FaultConfig(
                transient_rate=args.transient_rate,
                shard_fault_rate=args.shard_fault_rate,
            ),
        )
        if args.transient_rate > 0 or args.shard_fault_rate > 0
        else None
    )
    cfg = _config(args)
    # Resolve the artifact *before* scoping the registry: index build /
    # cache counters vary with process history (first call builds,
    # later calls hit), and folding them into the measured registry
    # would break the same-workload digest-equality guarantee.
    artifact = resolve_artifact(bundle, cfg)
    replicated = isinstance(artifact, ShardedIndexArtifact) and (
        args.replicas > 1 or args.shard_fault_rate > 0
    )
    health = None
    registry = MetricsRegistry()
    traces = []
    with use_registry(registry):
        store = None
        if replicated:
            # Replicated serving view: failover / hedge / health counters
            # land in the measured registry alongside the workload's.
            from repro.replication import HealthTracker

            rep = ReplicationConfig(replicas=args.replicas, hedging=args.replicas > 1)
            health = HealthTracker(rep)
            wrapper = None
            if injector is not None and args.shard_fault_rate > 0:
                wrapper = lambda s, shard, replica: (  # noqa: E731
                    injector.wrap_store(s, site=f"shard:{shard}")
                    if replica == 0
                    else s
                )
            store = artifact.fork_store().with_replication(
                rep, health=health, store_wrapper=wrapper
            )
        # An engine-less service over a bare pipeline: the chain's
        # engine concerns no-op, so the measured workload is exactly the
        # historical direct-pipeline one.
        service = ReproService.for_pipeline(
            pipeline_from_artifact(
                artifact, cfg, mode=args.mode, fault_injector=injector, store=store
            )
        )
        for q in krylov_benchmark()[: args.questions]:
            try:
                result = service.answer(q.text)
            except ReproError:
                continue
            if result.trace is not None:
                traces.append(result.trace)
    span_counts: dict[str, int] = {}
    for trace in traces:
        for name, n in trace.span_counts().items():
            span_counts[name] = span_counts.get(name, 0) + n
    span_digest = hashlib.sha256(
        json.dumps([t.structure_digest() for t in traces]).encode()
    ).hexdigest()
    shard_rows = []
    if isinstance(artifact, ShardedIndexArtifact):
        shard_rows = artifact.shard_summaries(
            replicas=args.replicas if replicated else 1, health=health
        )
    if args.json:
        workload = {
            "mode": args.mode,
            "model": args.model,
            "questions": args.questions,
            "seed": args.seed,
            "transient_rate": args.transient_rate,
        }
        if replicated:
            # Only attached on the replicated path: the default JSON
            # payload stays byte-identical (CI's determinism gate).
            workload["replicas"] = args.replicas
            workload["shard_fault_rate"] = args.shard_fault_rate
        payload = {
            "workload": workload,
            "digest": registry.digest(),
            "span_digest": span_digest,
            "spans": dict(sorted(span_counts.items())),
            "metrics": registry.deterministic_view(),
        }
        if shard_rows:
            payload["shards"] = {
                "num_shards": len(shard_rows),
                "composite_digest": artifact.digest,
                "shards": shard_rows,
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(registry.render_text())
        if shard_rows:
            print(f"\nshards ({len(shard_rows)}, composite {artifact.digest[:12]}):")
            for row in shard_rows:
                line = (
                    f"  shard {row['shard']}: {row['chunks']:>4} chunks, "
                    f"{row['vectors']:>4} vectors, {row['manual_pages']:>3} pages  "
                    f"[{row['digest'][:12]}]"
                )
                if "health" in row:
                    line += (
                        f"  replicas={row['replicas']} "
                        f"health={'/'.join(row['health'])}"
                    )
                print(line)
        print(f"\nspans: {dict(sorted(span_counts.items()))}")
        print(f"metrics digest: {registry.digest()}")
        print(f"span digest:    {span_digest}")
    return 0


def _read_questions(path: str) -> list[str]:
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"cannot read questions file {path}: {exc}") from exc
    stripped = text.lstrip()
    if stripped.startswith("["):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReproError(f"invalid JSON questions file {path}: {exc}") from exc
        if not isinstance(data, list) or not all(isinstance(q, str) for q in data):
            raise ReproError(f"JSON questions file {path} must be an array of strings")
        questions = [q.strip() for q in data if q.strip()]
    else:
        questions = [line.strip() for line in text.splitlines() if line.strip()]
    if not questions:
        raise ReproError(f"questions file {path} is empty")
    return questions


def cmd_batch(args: argparse.Namespace) -> int:
    questions = _read_questions(args.path)
    registry = MetricsRegistry()
    config = _config(args)
    arrivals = None
    if args.rate is not None:
        config.admission = AdmissionConfig(
            enabled=True,
            requests_per_second=args.rate,
            burst=args.burst if args.burst is not None else max(1, int(args.rate)),
            queue_depth=args.queue_depth,
            queue_timeout_seconds=args.queue_timeout,
        )
        arrivals = [i * args.arrival_interval for i in range(len(questions))]
    service = open_service(config, registry=registry)
    batch = service.answer_many(
        questions, mode=args.mode, workers=args.workers, seed=args.seed,
        arrivals=arrivals,
    )
    print(batch.render(show_answers=args.show_answers))
    print("cache stats:")
    for cache in ("answer_cache", "retrieval_cache", "embedding_cache"):
        hits = registry.counter(f"repro.engine.{cache}.hits").value
        misses = registry.counter(f"repro.engine.{cache}.misses").value
        total = hits + misses
        rate = f"{hits / total:.1%}" if total else "n/a"
        print(f"  {cache:<18}{hits:>6} hits / {misses:>6} misses  ({rate})")
    # Sheds are the admission layer doing its job, not a failure; the
    # exit code reflects only requests that reached the engine.
    return 0 if batch.answered_count == batch.admitted_count else 1


def cmd_ingest(args: argparse.Namespace) -> int:
    from repro.api import open_engine
    from repro.corpus.builder import overlay_tree
    from repro.ingest import ingest_corpus

    bundle = build_default_corpus()
    engine = open_engine(_config(args), bundle=bundle)
    for q in krylov_benchmark()[: args.warm]:
        engine.answer(q.text, mode=args.mode)
    revised = overlay_tree(bundle, args.docs) if args.docs else bundle
    report = ingest_corpus(engine, revised)
    print(json.dumps(report.summary(), indent=2, sort_keys=True))
    if report.noop:
        print("corpus unchanged: no-op ingest, serving state untouched",
              file=sys.stderr)
    else:
        print(
            f"epoch {report.epoch} | resolved via {report.resolution} | "
            f"embedded {report.delta.get('embedded', 0)} of "
            f"{report.delta.get('total', 0)} chunks",
            file=sys.stderr,
        )
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    path = Path(args.path)
    if not path.is_file():
        raise ReproError(f"no journal at {path}")
    kind = args.kind
    if kind == "auto":
        first = scan_journal(path).records[:1]
        if first and "interaction_id" in first[0]:
            kind = "history"
        elif first and "op" in first[0]:
            kind = "dead-letters"
        else:
            kind = "raw"
    truncate = not args.dry_run
    if kind == "history":
        store, report = InteractionStore.recover(path, truncate=truncate)
        print(f"history journal: {len(store)} interactions recovered")
    elif kind == "dead-letters":
        report = recover_journal(path, truncate=truncate)
        depth = 0
        for record in report.records:
            op = record.get("op")
            if op == "push":
                depth += 1
            elif op in ("pop", "drop") and depth:
                depth -= 1
        print(f"dead-letter journal: {report.intact_count} ops recovered, "
              f"queue depth {depth}")
    else:
        report = recover_journal(path, truncate=truncate)
        print(f"journal: {report.intact_count} records recovered")
    if report.truncated:
        action = "would drop" if args.dry_run else "dropped"
        print(
            f"torn tail: {action} {report.dropped_bytes} bytes at offset "
            f"{report.intact_bytes} ({report.reason})"
        )
    else:
        print("journal clean: nothing to drop")
    print(json.dumps(report.summary(), indent=2, sort_keys=True))
    return 0


_COMMANDS = {
    "ask": cmd_ask,
    "batch": cmd_batch,
    "evaluate": cmd_evaluate,
    "compare": cmd_compare,
    "corpus": cmd_corpus,
    "casestudy": cmd_casestudy,
    "chaos": cmd_chaos,
    "ingest": cmd_ingest,
    "metrics": cmd_metrics,
    "recover": cmd_recover,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
