"""Text rendering of the paper's figures and tables.

The paper's Fig. 6 panels are grouped bar charts of per-question scores;
here they render as aligned text (one row per question, score bars drawn
with ``#``), which diffs cleanly and needs no display.
"""

from __future__ import annotations

from repro.evaluation.experiments import ExperimentRun, ModeComparison
from repro.utils.timing import TimingStats


def render_comparison(cmp: ModeComparison, *, title: str = "") -> str:
    """A Fig.-6-style per-question comparison panel."""
    lines: list[str] = []
    if title:
        lines += [title, "=" * len(title)]
    lines.append(f"{'question':<9}{cmp.base_mode:>12}{cmp.new_mode:>14}  delta  bars")
    for qid in sorted(cmp.deltas):
        b, n = cmp.base_scores[qid], cmp.new_scores[qid]
        delta = cmp.deltas[qid]
        bar_b = "#" * b or "."
        bar_n = "#" * n or "."
        sign = f"+{delta}" if delta > 0 else (str(delta) if delta else " 0")
        lines.append(f"{qid:<9}{b:>12}{n:>14}  {sign:>5}  {bar_b:<4} -> {bar_n:<4}")
    lines.append("")
    lines.append(
        f"improved: {len(cmp.improved)}  worsened: {len(cmp.worsened)}  "
        f"unchanged: {len(cmp.unchanged)}"
    )
    if cmp.improved:
        lines.append(f"largest improvement: +{cmp.max_improvement()} "
                     f"({', '.join(cmp.improvements_of(cmp.max_improvement()))})")
    return "\n".join(lines)


def render_score_histogram(run: ExperimentRun, *, title: str = "") -> str:
    """Score distribution for one mode."""
    hist = run.score_histogram()
    lines: list[str] = []
    if title:
        lines += [title, "-" * len(title)]
    for score in range(4, -1, -1):
        n = hist[score]
        lines.append(f"score {score}: {n:>3}  {'#' * n}")
    lines.append(f"mean score: {run.mean_score():.2f} over {len(run.outcomes)} questions")
    return "\n".join(lines)


def render_latency_table(
    rag: TimingStats | None,
    rag_rerank: TimingStats | None,
    llm_rag: TimingStats,
    llm_rerank: TimingStats,
    *,
    ndigits: int = 3,
) -> str:
    """The paper's Table II layout: Min/Max/Avg for both configurations."""

    def row(label: str, left: TimingStats | None, right: TimingStats | None) -> str:
        def cells(st: TimingStats | None) -> str:
            if st is None:
                return f"{'-':>8}{'-':>8}{'-':>8}"
            mn, mx, av = st.as_row(ndigits)
            return f"{mn:>8}{mx:>8}{av:>8}"

        return f"{label:<14}{cells(left)}  |{cells(right)}"

    header = f"{'':<14}{'RAG':^24}  |{'RAG+reranking':^24}"
    sub = f"{'':<14}{'Min':>8}{'Max':>8}{'Avg':>8}  |{'Min':>8}{'Max':>8}{'Avg':>8}"
    lines = [header, sub, "-" * 66]
    lines.append(row("RAG time", rag, rag_rerank))
    lines.append(row("LLM response", llm_rag, llm_rerank))
    if rag is not None and rag_rerank is not None:
        ratio = rag_rerank.average / rag.average if rag.average else float("inf")
        frac = rag_rerank.average / llm_rerank.average if llm_rerank.average else float("inf")
        lines.append("")
        lines.append(f"reranking multiplies RAG time by {ratio:.2f}x "
                     f"(paper: ~2.4x); rerank-RAG is {100 * frac:.1f}% of LLM time "
                     f"(paper: <11%)")
    return "\n".join(lines)
