"""The 37-question Krylov-methods benchmark (paper Section V-A).

Each question carries gold ``key_facts`` (required for a correct answer,
rubric 3) and ``extra_facts`` (the additional detail an expert would
include, rubric 4).  The ``nonexistent`` kind marks questions about
fictitious APIs — the KSPBurb probe — where the ideal answer is a
grounded refusal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.facts import FactRegistry
from repro.errors import EvaluationError


@dataclass(frozen=True)
class BenchmarkQuestion:
    qid: str
    text: str
    key_facts: tuple[str, ...] = ()
    extra_facts: tuple[str, ...] = ()
    kind: str = "standard"  # "standard" | "nonexistent"

    def __post_init__(self) -> None:
        if self.kind not in ("standard", "nonexistent"):
            raise EvaluationError(f"{self.qid}: unknown kind {self.kind!r}")
        if self.kind == "standard" and not self.key_facts:
            raise EvaluationError(f"{self.qid}: standard questions need key_facts")

    def all_facts(self) -> tuple[str, ...]:
        return self.key_facts + self.extra_facts


def _q(qid: str, text: str, key: tuple[str, ...] = (), extra: tuple[str, ...] = (),
       kind: str = "standard") -> BenchmarkQuestion:
    return BenchmarkQuestion(qid=qid, text=text, key_facts=key, extra_facts=extra, kind=kind)


def krylov_benchmark() -> list[BenchmarkQuestion]:
    """The 37 benchmark questions on using Krylov methods within PETSc."""
    qs = [
        _q("Q01", "What does KSPBurb do?", kind="nonexistent"),
        _q("Q02",
           "Can I use KSP to solve a system where the matrix is not square, only "
           "rectangular? Must it be invertible too or does that depend on how you're "
           "using KSP?",
           key=("ksplsqr.rectangular", "ksplsqr.no_invert"),
           extra=("ksplsqr.normal_equiv",)),
        _q("Q03",
           "When assembling my matrix, how can I get PETSc to report whether the "
           "preallocation I provided was sufficient?",
           key=("mat.info_option",),
           extra=("mat.preallocation",)),
        _q("Q04",
           "Which Krylov method does KSP use by default, and with what restart?",
           key=("ksp.default_gmres",),
           extra=("gmres.restart_option",)),
        _q("Q05",
           "Our application hardwires one solver right now. We want to experiment with "
           "several different Krylov methods on the same problem without recompiling. "
           "What is the PETSc way to switch the method at runtime?",
           key=("ksp.settype",)),
        _q("Q06",
           "We never set any tolerances and wonder: what accuracy does the linear "
           "solver aim for out of the box, and when does it give up?",
           key=("conv.defaults",),
           extra=("conv.settolerances",)),
        _q("Q07",
           "How do I change the relative tolerance and the maximum number of iterations "
           "for a KSP solve?",
           key=("conv.settolerances",),
           extra=("conv.defaults",)),
        _q("Q08",
           "After KSPSolve returns, how do I find out whether the iteration converged "
           "or why it failed?",
           key=("conv.reason", "conv.reason_option")),
        _q("Q09",
           "Watching the convergence live would help us debug. How do we get the "
           "residual printed every iteration — ideally the true one, not just the "
           "preconditioned one?",
           key=("conv.monitor",),
           extra=("conv.monitorset",)),
        _q("Q10",
           "We warm-start each time step by filling the solution vector with the "
           "previous step's answer before calling the solver, but iteration counts do "
           "not drop at all. Is our initial guess being ignored?",
           key=("conv.initial_guess",)),
        _q("Q11",
           "When is the conjugate gradient method KSPCG appropriate, and does PETSc "
           "check that my matrix qualifies?",
           key=("cg.spd", "cg.matrix_check"),
           extra=("cg.indefinite_fail",)),
        _q("Q12",
           "Our Hessian-like matrix is symmetric but has negative eigenvalues mixed "
           "in, and plain conjugate gradient blows up on it. Which Krylov method is "
           "actually designed for this situation?",
           key=("minres.symmetric_indefinite",),
           extra=("symmlq.symmetric",)),
        _q("Q13",
           "Long runs on our cluster get killed by the out-of-memory killer; resident "
           "memory climbs steadily with the iteration count under the default solver "
           "settings. Is this a leak, or does the method itself keep allocating?",
           key=("gmres.memory_grows",),
           extra=("gmres.restart_option",)),
        _q("Q14",
           "Everyone on our team has a different superstition about the restart "
           "value. Small values seem to spin forever on hard problems, huge ones blow "
           "out the node memory. What is the actual trade-off?",
           key=("gmres.restart_tradeoff",),
           extra=("gmres.restart_option",)),
        _q("Q15",
           "I need a low-memory Krylov method for a nonsymmetric system. What do you "
           "recommend?",
           key=("bcgs.nonsymmetric",),
           extra=("bcgs.no_transpose",)),
        _q("Q16",
           "The residual plot from our BiCGStab runs looks like a seismograph, full "
           "of spikes, although it does converge in the end. Is there a better-behaved "
           "variant or setting to smooth this out?",
           key=("bcgsl.ell",),
           extra=("tfqmr.smooth",)),
        _q("Q17",
           "Our operator is only available as a forward action y = A x; applying its "
           "transpose is impossible in our code base. Can we still use the BiCGStab "
           "family of solvers?",
           key=("bcgs.no_transpose",)),
        _q("Q18",
           "What is flexible GMRES (KSPFGMRES) for, and when do I need it instead of "
           "plain GMRES?",
           key=("fgmres.variable_pc",),
           extra=("fgmres.right_only",)),
        _q("Q19",
           "Why does KSPFGMRES give an error when I request left preconditioning?",
           key=("fgmres.right_only",),
           extra=("pc.side_default",)),
        _q("Q20",
           "How do I switch KSP to right preconditioning, and what does that change "
           "about the convergence test?",
           key=("pc.side_default", "conv.true_residual_norm")),
        _q("Q21",
           "What preconditioner does PETSc use if I don't choose one, in serial and in "
           "parallel?",
           key=("pc.default",),
           extra=("pcbjacobi.blocks",)),
        _q("Q22",
           "How do I perform a direct solve (LU) through the KSP interface?",
           key=("preonly.direct",),
           extra=("preonly.check", "pclu.parallel")),
        _q("Q23",
           "I ran with -ksp_type preonly -pc_type ilu and the returned solution is "
           "wrong, with no error message. What happened?",
           key=("preonly.check",)),
        _q("Q24",
           "During the setup of the factorization our run aborts with a "
           "division-by-zero-like failure on the diagonal (zero pivot). The matrix "
           "comes from a mixed finite element discretization. How do we get past this?",
           key=("pcilu.zeropivot",),
           extra=("pcilu.levels",)),
        _q("Q25",
           "Our pressure solve for incompressible flow stalls around a relative "
           "accuracy of 1e-3 no matter how many iterations we allow. The operator is "
           "singular — the constant vector is in its null space. What are we missing?",
           key=("nullspace.set",),
           extra=("nullspace.constant", "nullspace.pc_care")),
        _q("Q26",
           "Can we run a Krylov solve without ever assembling the matrix, supplying "
           "only a routine that applies the operator to a vector?",
           key=("mf.shell",),
           extra=("mf.pc_restriction",)),
        _q("Q27",
           "Which preconditioners can I still use when my operator is a shell "
           "(matrix-free) matrix?",
           key=("mf.pc_restriction",),
           extra=("pcjacobi.diag",)),
        _q("Q28",
           "Our Krylov solver stops scaling beyond a few thousand MPI ranks even though "
           "the matrix is well distributed. What is the likely bottleneck?",
           key=("perf.reductions_scaling",),
           extra=("pipecg.overlap", "pipelined.async")),
        _q("Q29",
           "We read that overlapping the dot-product synchronization with the matrix "
           "work can hide network latency at scale. Does PETSc's conjugate gradient "
           "have a variant for this, and what are the gotchas?",
           key=("pipecg.overlap", "pipelined.async"),
           extra=("pipelined.stability",)),
        _q("Q30",
           "We want to switch our multigrid smoother to the Chebyshev iteration, but "
           "heard it can diverge instantly if you just turn it on. What does it need "
           "from us to work?",
           key=("chebyshev.bounds",)),
        _q("Q31",
           "Why is Chebyshev iteration popular as a smoother inside multigrid at large "
           "scale?",
           key=("chebyshev.no_reductions",)),
        _q("Q32",
           "How do I measure where the time goes in my linear solve — setup versus "
           "the actual KSPSolve iterations?",
           key=("perf.logview", "perf.stages")),
        _q("Q33",
           "How can I see exactly which solver, tolerances, and preconditioner my run "
           "actually used?",
           key=("ksp.view_option",),
           extra=("options.help",)),
        _q("Q34",
           "Every outer optimization step updates the matrix entries. Destroying and "
           "recreating the Krylov solver object each step feels wasteful. Can the same "
           "solver be reused after the matrix changes?",
           key=("ksp.reuse_solver",),
           extra=("ksp.setoperators_amat_pmat",)),
        _q("Q35",
           "In KSPSetOperators, what is the difference between the Amat and Pmat "
           "arguments?",
           key=("ksp.setoperators_amat_pmat",),
           extra=("mf.pc_restriction",)),
        _q("Q36",
           "For the adjoint solve in my optimization loop I need to solve with the "
           "transpose of the matrix. Does KSP support that directly?",
           key=("ksp.solvetranspose",)),
        _q("Q37",
           "Our application has its own notion of convergence based on an energy "
           "norm. Can we plug that in instead of the built-in residual test?",
           key=("conv.custom_test",),
           extra=("conv.default_test_norm",)),
    ]
    if len(qs) != 37:
        raise EvaluationError(f"benchmark must have 37 questions, got {len(qs)}")
    ids = [q.qid for q in qs]
    if len(set(ids)) != 37:
        raise EvaluationError("duplicate question ids in benchmark")
    return qs


def validate_benchmark(registry: FactRegistry) -> None:
    """Check every gold fact id resolves against the registry."""
    for q in krylov_benchmark():
        for fid in q.all_facts():
            registry.fact(fid)  # raises CorpusError on unknown ids
