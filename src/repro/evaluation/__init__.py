"""Evaluation: rubric, benchmark, blind grader, experiments, reporting.

Reproduces the paper's Section V: a 37-question benchmark on Krylov
methods, blind-scored 0–4 (Table I), comparing the GPT-4o-class baseline
against RAG and reranking-enhanced RAG (Figs. 6a–6c), plus the latency
measurements of Table II and the two case studies (Figs. 7–8).
"""

from repro.evaluation.rubric import RUBRIC, Score, rubric_label
from repro.evaluation.benchmark import BenchmarkQuestion, krylov_benchmark
from repro.evaluation.chaos import (
    ChaosOutcome,
    ChaosRun,
    OverloadOutcome,
    RecoveryOutcome,
    RobustnessRun,
    run_chaos_experiment,
    run_robustness_sweep,
)
from repro.evaluation.grader import BlindGrader, GradedAnswer
from repro.evaluation.experiments import (
    ExperimentRun,
    ModeComparison,
    compare_modes,
    run_experiment,
)
from repro.evaluation.reporting import (
    render_comparison,
    render_score_histogram,
    render_latency_table,
)

__all__ = [
    "RUBRIC",
    "Score",
    "rubric_label",
    "BenchmarkQuestion",
    "krylov_benchmark",
    "ChaosOutcome",
    "ChaosRun",
    "OverloadOutcome",
    "RecoveryOutcome",
    "RobustnessRun",
    "run_chaos_experiment",
    "run_robustness_sweep",
    "BlindGrader",
    "GradedAnswer",
    "ExperimentRun",
    "ModeComparison",
    "compare_modes",
    "run_experiment",
    "render_comparison",
    "render_score_histogram",
    "render_latency_table",
]
