"""Experiment runner: evaluate pipelines over the benchmark and compare modes."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EvaluationError
from repro.evaluation.benchmark import BenchmarkQuestion, krylov_benchmark
from repro.evaluation.grader import BlindGrader, GradedAnswer
from repro.pipeline.rag import PipelineResult, RAGPipeline
from repro.utils.timing import StageTimer, TimingStats


@dataclass
class QuestionOutcome:
    question: BenchmarkQuestion
    result: PipelineResult
    grade: GradedAnswer


@dataclass
class ExperimentRun:
    """All outcomes of one pipeline mode over the benchmark."""

    mode: str
    model: str
    outcomes: list[QuestionOutcome] = field(default_factory=list)
    timer: StageTimer = field(default_factory=StageTimer)

    def scores(self) -> dict[str, int]:
        return {o.question.qid: int(o.grade.score) for o in self.outcomes}

    def score_histogram(self) -> dict[int, int]:
        hist = {s: 0 for s in range(5)}
        for o in self.outcomes:
            hist[int(o.grade.score)] += 1
        return hist

    def mean_score(self) -> float:
        if not self.outcomes:
            raise EvaluationError("empty experiment run")
        return sum(int(o.grade.score) for o in self.outcomes) / len(self.outcomes)

    def rag_stats(self) -> TimingStats | None:
        try:
            return self.timer.stats("rag")
        except KeyError:
            return None

    def llm_stats(self) -> TimingStats:
        return self.timer.stats("llm")


@dataclass
class ModeComparison:
    """Per-question deltas between two modes (the Fig. 6 data)."""

    base_mode: str
    new_mode: str
    deltas: dict[str, int] = field(default_factory=dict)
    base_scores: dict[str, int] = field(default_factory=dict)
    new_scores: dict[str, int] = field(default_factory=dict)

    @property
    def improved(self) -> list[str]:
        return sorted(q for q, d in self.deltas.items() if d > 0)

    @property
    def worsened(self) -> list[str]:
        return sorted(q for q, d in self.deltas.items() if d < 0)

    @property
    def unchanged(self) -> list[str]:
        return sorted(q for q, d in self.deltas.items() if d == 0)

    def max_improvement(self) -> int:
        return max(self.deltas.values(), default=0)

    def improvements_of(self, points: int) -> list[str]:
        return sorted(q for q, d in self.deltas.items() if d == points)


def run_experiment(
    service,
    grader: BlindGrader,
    *,
    questions: list[BenchmarkQuestion] | None = None,
    mode: str | None = None,
) -> ExperimentRun:
    """Run every benchmark question through ``service`` and grade blind.

    ``service`` is a :class:`~repro.service.ReproService` (the front
    door — every question runs the full request lifecycle); a legacy
    bare :class:`~repro.pipeline.rag.RAGPipeline` is also accepted and
    wrapped in an engine-less service on the spot, which serves it
    identically to the historical direct calls.  ``mode`` selects the
    pipeline mode on multi-mode (engine-backed) services; the default is
    the service's own default mode.
    """
    from repro.service import ReproService

    if isinstance(service, RAGPipeline):
        service = ReproService.for_pipeline(service)
    mode = service.resolve_mode(mode)
    questions = questions if questions is not None else krylov_benchmark()
    run = ExperimentRun(mode=mode, model=service.model_name(mode))
    for q in questions:
        result = service.answer(q.text, mode=mode)
        grade = grader.grade(q, result.answer)
        run.outcomes.append(QuestionOutcome(question=q, result=result, grade=grade))
        if mode != "baseline":
            run.timer.record("rag", result.rag_seconds)
        run.timer.record("llm", result.llm_seconds)
    return run


def compare_modes(base: ExperimentRun, new: ExperimentRun) -> ModeComparison:
    """Per-question score deltas: ``new - base``."""
    base_scores = base.scores()
    new_scores = new.scores()
    if set(base_scores) != set(new_scores):
        raise EvaluationError(
            "cannot compare runs over different question sets: "
            f"{sorted(set(base_scores) ^ set(new_scores))}"
        )
    return ModeComparison(
        base_mode=base.mode,
        new_mode=new.mode,
        deltas={q: new_scores[q] - base_scores[q] for q in base_scores},
        base_scores=base_scores,
        new_scores=new_scores,
    )
