"""Chaos experiments: the benchmark under seeded fault injection.

A chaos run answers every benchmark question through a pipeline whose
hops are wrapped by a :class:`~repro.resilience.FaultInjector`.  A
question either *answers* (possibly degraded, possibly after retries) or
*fails* — the failure is caught and recorded, never allowed to abort the
run.  Because every injection decision is a pure function of the seed,
two runs with the same seed produce byte-identical fault schedules and
results, which the digests below make checkable.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.config import AdmissionConfig, WorkflowConfig
from repro.corpus.builder import CorpusBundle
from repro.durability.journal import Journal, encode_json_record, recover_journal
from repro.engine import QueryEngine
from repro.errors import EvaluationError, ReproError, SimulatedCrashError
from repro.evaluation.benchmark import BenchmarkQuestion, krylov_benchmark
from repro.observability import MetricsRegistry, get_registry, use_registry
from repro.resilience import FaultConfig, FaultInjector, TornWriteInjector
from repro.utils.rng import rng_for


@dataclass
class ChaosOutcome:
    """What happened to one benchmark question under injected faults."""

    qid: str
    answered: bool
    answer: str = ""
    attempts: int = 1
    degraded: list[str] = field(default_factory=list)
    error: str = ""
    #: Shard coverage of the answer (1.0 for monolithic/full scatters).
    coverage: float = 1.0


@dataclass
class ChaosRun:
    """All outcomes of one seeded chaos sweep over the benchmark."""

    seed: int
    mode: str
    fault_config: FaultConfig
    outcomes: list[ChaosOutcome] = field(default_factory=list)
    schedule_digest: str = ""
    fault_counts: dict[str, int] = field(default_factory=dict)
    #: Replication-layer activity during the run (failovers, hedges,
    #: hedge_wins, partial_queries) — zeros for monolithic configs.
    replica_stats: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------ metrics
    @property
    def answered_count(self) -> int:
        return sum(1 for o in self.outcomes if o.answered)

    @property
    def success_rate(self) -> float:
        if not self.outcomes:
            raise EvaluationError("empty chaos run")
        return self.answered_count / len(self.outcomes)

    @property
    def min_coverage(self) -> float:
        """Worst shard coverage any answered question saw (1.0 when none)."""
        covered = [o.coverage for o in self.outcomes if o.answered]
        return min(covered) if covered else 1.0

    def degradation_mix(self) -> dict[str, int]:
        """How often each degradation rung fired, plus retry/clean tallies."""
        mix: dict[str, int] = {"clean": 0, "retried": 0, "failed": 0}
        for o in self.outcomes:
            if not o.answered:
                mix["failed"] += 1
                continue
            if o.attempts > 1:
                mix["retried"] += 1
            if not o.degraded and o.attempts == 1:
                mix["clean"] += 1
            for event in o.degraded:
                mix[event] = mix.get(event, 0) + 1
        return mix

    def results_digest(self) -> str:
        """SHA-256 over the canonical outcomes — byte-identical across
        runs with the same seed, config, and question set.

        The payload is frozen by the golden suite; partial answers
        already surface in it through the ``shard:partial`` degradation
        mark, so ``coverage`` stays out (the shard-fault sweep phase has
        its own coverage-bearing digest).
        """
        payload = json.dumps(
            [
                [o.qid, o.answered, o.answer, o.attempts, o.degraded, o.error]
                for o in self.outcomes
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    # ------------------------------------------------------------ rendering
    def render(self, *, title: str = "") -> str:
        lines: list[str] = []
        if title:
            lines += [title, "-" * len(title)]
        c = self.fault_config
        lines.append(
            f"seed {self.seed} | mode {self.mode} | rates: transient {c.transient_rate:.0%}, "
            f"latency {c.latency_spike_rate:.0%}, truncate {c.truncation_rate:.0%}"
        )
        lines.append(
            f"answered {self.answered_count}/{len(self.outcomes)} "
            f"({self.success_rate:.1%})"
        )
        lines.append("degradation mix:")
        for event, n in sorted(self.degradation_mix().items()):
            lines.append(f"  {event:<28}{n:>4}")
        injected = {k: v for k, v in self.fault_counts.items() if k != "ok"}
        lines.append(f"injected faults: {injected}")
        if any(self.replica_stats.values()) or self.min_coverage < 1.0:
            s = self.replica_stats
            lines.append(
                f"replica serving: {s.get('failovers', 0)} failovers, "
                f"{s.get('hedges', 0)} hedges ({s.get('hedge_wins', 0)} wins), "
                f"{s.get('partial_queries', 0)} partial queries, "
                f"min coverage {self.min_coverage:.2f}"
            )
        lines.append(f"schedule digest: {self.schedule_digest}")
        lines.append(f"results digest:  {self.results_digest()}")
        return "\n".join(lines)


def run_chaos_experiment(
    bundle: CorpusBundle,
    config: WorkflowConfig | None = None,
    *,
    seed: int,
    fault_config: FaultConfig,
    mode: str = "rag+rerank",
    questions: list[BenchmarkQuestion] | None = None,
) -> ChaosRun:
    """Answer every benchmark question under injected faults.

    Per-question pipeline failures (retry exhaustion, open breaker) are
    caught and recorded as unanswered outcomes; the sweep always
    completes.
    """
    config = config or WorkflowConfig(iterations_per_token=0)
    questions = questions if questions is not None else krylov_benchmark()
    injector = FaultInjector(seed, fault_config)
    # A fault injector disables the engine's answer cache, so every
    # question hits the chaos-wrapped hops and the fault schedule stays
    # a pure function of the seed; the index artifact is still shared.
    # The engine comes from the facade, so sharded/replicated configs
    # run the scatter path (shard faults, failover, partial coverage).
    from repro.api import open_engine

    service = open_engine(config, bundle=bundle, fault_injector=injector).service
    run = ChaosRun(seed=seed, mode=mode, fault_config=fault_config)
    replica_counters = (
        "repro.replica.failovers",
        "repro.replica.hedges",
        "repro.replica.hedge_wins",
        "repro.shard.partial_queries",
    )
    ambient = get_registry()
    before = {name: ambient.counter(name).value for name in replica_counters}
    for q in questions:
        try:
            result = service.answer(q.text, mode=mode)
        except ReproError as exc:
            run.outcomes.append(
                ChaosOutcome(
                    qid=q.qid,
                    answered=False,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
        else:
            run.outcomes.append(
                ChaosOutcome(
                    qid=q.qid,
                    answered=True,
                    answer=result.answer,
                    attempts=result.attempts,
                    degraded=[str(e) for e in result.degraded],
                    coverage=result.coverage,
                )
            )
    run.replica_stats = {
        name.rsplit(".", 1)[-1]: ambient.counter(name).value - before[name]
        for name in replica_counters
    }
    run.schedule_digest = injector.schedule_digest()
    run.fault_counts = injector.fault_counts()
    return run


# ---------------------------------------------------------------------------
# Robustness sweep: faults + overload + crash recovery in one run
# ---------------------------------------------------------------------------
@dataclass
class OverloadOutcome:
    """The admission ladder's behaviour under a synthetic burst."""

    factor: int
    total: int
    admitted: int = 0
    queued: int = 0
    shed: int = 0
    answered: int = 0
    #: Every shed item carried a positive retry_after hint.
    retry_after_ok: bool = True
    answers_digest: str = ""
    metrics_digest: str = ""
    error: str = ""


@dataclass
class ShardFaultOutcome:
    """Replicated shard serving under a seeded shard-outage schedule."""

    shards: int
    replicas: int
    fault_rate: float
    hedging: bool = True
    total: int = 0
    answered: int = 0
    #: Questions answered from fewer shards than the index holds.
    partial: int = 0
    failovers: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    min_coverage: float = 1.0
    schedule_digest: str = ""
    results_digest: str = ""
    error: str = ""


@dataclass
class RecoveryOutcome:
    """One seeded torn-write crash and what recovery salvaged."""

    records_written: int
    crash_record: int
    cut_at: int
    recovered: int = 0
    dropped_bytes: int = 0
    #: The recovered records equal the intact prefix, byte for byte.
    prefix_ok: bool = False
    reason: str = ""


@dataclass
class RobustnessRun:
    """Chaos faults, overload shedding, and crash recovery, one seed."""

    seed: int
    chaos: ChaosRun
    overload: OverloadOutcome
    recovery: RecoveryOutcome
    #: Added by the replication PR; None only for hand-built runs.
    shard_faults: ShardFaultOutcome | None = None

    def digest(self) -> str:
        """SHA-256 over every decision the sweep made (paths excluded):
        same seed and inputs → byte-identical digest."""
        o, r, s = self.overload, self.recovery, self.shard_faults
        payload = json.dumps(
            [
                self.chaos.results_digest(),
                self.chaos.schedule_digest,
                [o.factor, o.total, o.admitted, o.queued, o.shed, o.answered,
                 o.retry_after_ok, o.answers_digest, o.metrics_digest, o.error],
                [r.records_written, r.crash_record, r.cut_at, r.recovered,
                 r.dropped_bytes, r.prefix_ok, r.reason],
                None if s is None else [
                    s.shards, s.replicas, round(s.fault_rate, 6), s.hedging,
                    s.total, s.answered, s.partial, s.failovers, s.hedges,
                    s.hedge_wins, round(s.min_coverage, 6),
                    s.schedule_digest, s.results_digest, s.error,
                ],
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def render(self, *, title: str = "") -> str:
        lines = [self.chaos.render(title=title), ""]
        if self.shard_faults is not None:
            s = self.shard_faults
            lines.append(
                f"shard faults ({s.shards} shards × {s.replicas} replicas, "
                f"rate {s.fault_rate:.0%}): {s.answered}/{s.total} answered, "
                f"{s.failovers} failovers, {s.hedges} hedges "
                f"({s.hedge_wins} wins), {s.partial} partial, "
                f"min coverage {s.min_coverage:.2f}"
            )
        o = self.overload
        lines.append(
            f"overload {o.factor}x: {o.admitted} admitted ({o.queued} via queue), "
            f"{o.shed} shed of {o.total}; {o.answered} answered; "
            f"retry_after {'ok' if o.retry_after_ok else 'MISSING'}"
        )
        r = self.recovery
        lines.append(
            f"crash recovery: tore record {r.crash_record} at byte {r.cut_at} "
            f"of {r.records_written} written → {r.recovered} recovered, "
            f"{r.dropped_bytes} bytes dropped, "
            f"prefix {'intact' if r.prefix_ok else 'BROKEN'}"
        )
        lines.append(f"robustness digest: {self.digest()}")
        return "\n".join(lines)


def _run_overload_phase(
    bundle: CorpusBundle,
    config: WorkflowConfig,
    *,
    seed: int,
    factor: int,
    questions: list[BenchmarkQuestion],
    mode: str,
) -> OverloadOutcome:
    """Drive a burst at ``factor``× the admitted rate through admission."""
    rate, burst = 4.0, 4
    admission = AdmissionConfig(
        enabled=True,
        requests_per_second=rate,
        burst=burst,
        queue_depth=burst,
        queue_timeout_seconds=1.0,
    )
    cfg = replace(config, admission=admission)
    n = max(1, factor) * burst
    texts = [questions[i % len(questions)].text for i in range(n)]
    arrivals = [i / (max(1, factor) * rate) for i in range(n)]
    outcome = OverloadOutcome(factor=factor, total=n)
    registry = MetricsRegistry()
    try:
        service = QueryEngine.from_corpus(bundle, cfg).service
        with use_registry(registry):
            batch = service.answer_many(texts, mode=mode, seed=seed, arrivals=arrivals)
    except ReproError as exc:  # the sweep reports, never aborts
        outcome.error = f"{type(exc).__name__}: {exc}"
        return outcome
    outcome.admitted = batch.admitted_count
    outcome.queued = batch.queued_count
    outcome.shed = batch.shed_count
    outcome.answered = batch.answered_count
    outcome.retry_after_ok = all(
        it.retry_after > 0 for it in batch.items if it.shed
    )
    outcome.answers_digest = batch.answers_digest()
    outcome.metrics_digest = registry.digest()
    return outcome


def _run_shard_fault_phase(
    bundle: CorpusBundle,
    config: WorkflowConfig,
    *,
    seed: int,
    questions: list[BenchmarkQuestion],
    mode: str,
    shard_fault_rate: float,
    replicas: int,
) -> ShardFaultOutcome:
    """Serve the benchmark while a seeded schedule kills shard primaries.

    The engine wraps every shard's primary replica at site ``shard:N``
    (see :meth:`ShardedQueryEngine._replica_fault_wrapper`); with
    ``replicas >= 2`` failover absorbs each outage, with a single copy
    the shard goes dark and answers degrade to partial coverage.
    Questions are answered sequentially so the fault schedule — and
    therefore the digest — is a pure function of the seed.
    """
    from repro.engine import ShardedQueryEngine

    num_shards = config.sharding.num_shards or 2
    cfg = replace(
        config,
        sharding=replace(config.sharding, num_shards=num_shards),
        replication=replace(
            config.replication, replicas=replicas, hedging=replicas > 1
        ),
    )
    outcome = ShardFaultOutcome(
        shards=num_shards,
        replicas=replicas,
        fault_rate=shard_fault_rate,
        hedging=replicas > 1,
        total=len(questions),
    )
    injector = FaultInjector(seed, FaultConfig(shard_fault_rate=shard_fault_rate))
    registry = MetricsRegistry()
    results: list[list] = []
    try:
        service = ShardedQueryEngine.from_corpus(
            bundle, cfg, fault_injector=injector
        ).service
        with use_registry(registry):
            for q in questions:
                try:
                    result = service.answer(q.text, mode=mode)
                except ReproError as exc:
                    results.append([q.qid, False, "", f"{type(exc).__name__}: {exc}", 0.0])
                else:
                    outcome.answered += 1
                    coverage = round(result.coverage, 6)
                    if coverage < 1.0:
                        outcome.partial += 1
                    outcome.min_coverage = min(outcome.min_coverage, coverage)
                    results.append(
                        [q.qid, True, result.answer,
                         [str(e) for e in result.degraded], coverage]
                    )
    except ReproError as exc:  # the sweep reports, never aborts
        outcome.error = f"{type(exc).__name__}: {exc}"
        return outcome
    outcome.failovers = registry.counter("repro.replica.failovers").value
    outcome.hedges = registry.counter("repro.replica.hedges").value
    outcome.hedge_wins = registry.counter("repro.replica.hedge_wins").value
    outcome.schedule_digest = injector.schedule_digest()
    payload = json.dumps(results, separators=(",", ":"))
    outcome.results_digest = hashlib.sha256(payload.encode()).hexdigest()
    return outcome


def _run_recovery_phase(
    *, seed: int, journal_dir: str | Path | None
) -> RecoveryOutcome:
    """Journal seeded records, tear one mid-write, recover the prefix."""
    rng = rng_for("chaos-crash", seed)
    n_records = 8 + int(rng.integers(0, 8))
    records = [
        {"seq": i, "note": f"chaos-crash-{seed}-{i}", "pad": "x" * int(rng.integers(4, 40))}
        for i in range(n_records)
    ]
    crash_record = int(rng.integers(1, n_records))
    frame = encode_json_record(records[crash_record])
    cut_at = int(rng.integers(1, len(frame)))
    outcome = RecoveryOutcome(
        records_written=n_records, crash_record=crash_record, cut_at=cut_at
    )

    def run_in(directory: Path) -> None:
        path = directory / f"chaos-{seed}.journal"
        injector = TornWriteInjector(record_index=crash_record, cut_at=cut_at)
        journal = Journal(path, fault=injector)
        try:
            for record in records:
                journal.append(record)
        except SimulatedCrashError:
            pass
        finally:
            journal.close()
        report = recover_journal(path)
        outcome.recovered = report.intact_count
        outcome.dropped_bytes = report.dropped_bytes
        outcome.reason = report.reason
        outcome.prefix_ok = report.records == records[:crash_record]

    if journal_dir is not None:
        Path(journal_dir).mkdir(parents=True, exist_ok=True)
        run_in(Path(journal_dir))
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            run_in(Path(tmp))
    return outcome


def run_robustness_sweep(
    bundle: CorpusBundle,
    config: WorkflowConfig | None = None,
    *,
    seed: int,
    fault_config: FaultConfig,
    mode: str = "rag+rerank",
    overload_factor: int = 16,
    questions: list[BenchmarkQuestion] | None = None,
    journal_dir: str | Path | None = None,
    shard_fault_rate: float = 0.25,
    replicas: int = 2,
) -> RobustnessRun:
    """Chaos faults, shard outages, overload, and a torn-write crash.

    The four phases exercise the full robustness surface: injected hop
    faults (retries, degradation), a seeded shard-outage schedule
    against the replicated scatter (failover, hedging, partial
    coverage — skipped when ``shard_fault_rate`` is 0), admission
    shedding at ``overload_factor``× capacity, and journal recovery
    after a seeded torn write.  Everything digest-relevant is a pure
    function of the seed and inputs — :meth:`RobustnessRun.digest` is
    stable across runs.
    """
    config = config or WorkflowConfig(iterations_per_token=0)
    questions = questions if questions is not None else krylov_benchmark()
    chaos = run_chaos_experiment(
        bundle, config, seed=seed, fault_config=fault_config,
        mode=mode, questions=questions,
    )
    shard_faults = None
    if shard_fault_rate > 0:
        shard_faults = _run_shard_fault_phase(
            bundle, config, seed=seed, questions=questions, mode=mode,
            shard_fault_rate=shard_fault_rate, replicas=replicas,
        )
    overload = _run_overload_phase(
        bundle, config, seed=seed, factor=overload_factor,
        questions=questions, mode=mode,
    )
    recovery = _run_recovery_phase(seed=seed, journal_dir=journal_dir)
    return RobustnessRun(
        seed=seed, chaos=chaos, overload=overload, recovery=recovery,
        shard_faults=shard_faults,
    )
