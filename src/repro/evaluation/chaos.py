"""Chaos experiments: the benchmark under seeded fault injection.

A chaos run answers every benchmark question through a pipeline whose
hops are wrapped by a :class:`~repro.resilience.FaultInjector`.  A
question either *answers* (possibly degraded, possibly after retries) or
*fails* — the failure is caught and recorded, never allowed to abort the
run.  Because every injection decision is a pure function of the seed,
two runs with the same seed produce byte-identical fault schedules and
results, which the digests below make checkable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.config import WorkflowConfig
from repro.corpus.builder import CorpusBundle
from repro.engine import QueryEngine
from repro.errors import EvaluationError, ReproError
from repro.evaluation.benchmark import BenchmarkQuestion, krylov_benchmark
from repro.resilience import FaultConfig, FaultInjector


@dataclass
class ChaosOutcome:
    """What happened to one benchmark question under injected faults."""

    qid: str
    answered: bool
    answer: str = ""
    attempts: int = 1
    degraded: list[str] = field(default_factory=list)
    error: str = ""


@dataclass
class ChaosRun:
    """All outcomes of one seeded chaos sweep over the benchmark."""

    seed: int
    mode: str
    fault_config: FaultConfig
    outcomes: list[ChaosOutcome] = field(default_factory=list)
    schedule_digest: str = ""
    fault_counts: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------ metrics
    @property
    def answered_count(self) -> int:
        return sum(1 for o in self.outcomes if o.answered)

    @property
    def success_rate(self) -> float:
        if not self.outcomes:
            raise EvaluationError("empty chaos run")
        return self.answered_count / len(self.outcomes)

    def degradation_mix(self) -> dict[str, int]:
        """How often each degradation rung fired, plus retry/clean tallies."""
        mix: dict[str, int] = {"clean": 0, "retried": 0, "failed": 0}
        for o in self.outcomes:
            if not o.answered:
                mix["failed"] += 1
                continue
            if o.attempts > 1:
                mix["retried"] += 1
            if not o.degraded and o.attempts == 1:
                mix["clean"] += 1
            for event in o.degraded:
                mix[event] = mix.get(event, 0) + 1
        return mix

    def results_digest(self) -> str:
        """SHA-256 over the canonical outcomes — byte-identical across
        runs with the same seed, config, and question set."""
        payload = json.dumps(
            [
                [o.qid, o.answered, o.answer, o.attempts, o.degraded, o.error]
                for o in self.outcomes
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    # ------------------------------------------------------------ rendering
    def render(self, *, title: str = "") -> str:
        lines: list[str] = []
        if title:
            lines += [title, "-" * len(title)]
        c = self.fault_config
        lines.append(
            f"seed {self.seed} | mode {self.mode} | rates: transient {c.transient_rate:.0%}, "
            f"latency {c.latency_spike_rate:.0%}, truncate {c.truncation_rate:.0%}"
        )
        lines.append(
            f"answered {self.answered_count}/{len(self.outcomes)} "
            f"({self.success_rate:.1%})"
        )
        lines.append("degradation mix:")
        for event, n in sorted(self.degradation_mix().items()):
            lines.append(f"  {event:<28}{n:>4}")
        injected = {k: v for k, v in self.fault_counts.items() if k != "ok"}
        lines.append(f"injected faults: {injected}")
        lines.append(f"schedule digest: {self.schedule_digest}")
        lines.append(f"results digest:  {self.results_digest()}")
        return "\n".join(lines)


def run_chaos_experiment(
    bundle: CorpusBundle,
    config: WorkflowConfig | None = None,
    *,
    seed: int,
    fault_config: FaultConfig,
    mode: str = "rag+rerank",
    questions: list[BenchmarkQuestion] | None = None,
) -> ChaosRun:
    """Answer every benchmark question under injected faults.

    Per-question pipeline failures (retry exhaustion, open breaker) are
    caught and recorded as unanswered outcomes; the sweep always
    completes.
    """
    config = config or WorkflowConfig(iterations_per_token=0)
    questions = questions if questions is not None else krylov_benchmark()
    injector = FaultInjector(seed, fault_config)
    # A fault injector disables the engine's answer cache, so every
    # question hits the chaos-wrapped hops and the fault schedule stays
    # a pure function of the seed; the index artifact is still shared.
    engine = QueryEngine.from_corpus(bundle, config, fault_injector=injector)
    run = ChaosRun(seed=seed, mode=mode, fault_config=fault_config)
    for q in questions:
        try:
            result = engine.answer(q.text, mode=mode)
        except ReproError as exc:
            run.outcomes.append(
                ChaosOutcome(
                    qid=q.qid,
                    answered=False,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
        else:
            run.outcomes.append(
                ChaosOutcome(
                    qid=q.qid,
                    answered=True,
                    answer=result.answer,
                    attempts=result.attempts,
                    degraded=[str(e) for e in result.degraded],
                )
            )
    run.schedule_digest = injector.schedule_digest()
    run.fault_counts = injector.fault_counts()
    return run
