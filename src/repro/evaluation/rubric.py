"""The paper's Table I scoring rubric."""

from __future__ import annotations

from enum import IntEnum

from repro.errors import EvaluationError


class Score(IntEnum):
    """Rubric for LLM responses (higher is better) — paper Table I."""

    NONSENSICAL = 0
    INCORRECT = 1
    MINOR_INACCURACIES = 2
    CORRECT = 3
    IDEAL = 4


RUBRIC: dict[Score, str] = {
    Score.NONSENSICAL: "Nonsensical answer",
    Score.INCORRECT: "Incorrect or inaccurate statements (hallucinations) in the answer",
    Score.MINOR_INACCURACIES: "Correct material with only minor inaccuracies",
    Score.CORRECT: "Answer is clear and correct",
    Score.IDEAL: "Ideal answer, close to what an expert would respond",
}


def rubric_label(score: int) -> str:
    """Human-readable description of a rubric score."""
    try:
        return RUBRIC[Score(score)]
    except ValueError:
        raise EvaluationError(f"score must be in 0..4, got {score}") from None
