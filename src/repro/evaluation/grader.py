"""Mechanical blind grading against the Table I rubric.

The grader sees only the question and the answer text — not the pipeline
that produced it (that is the "blind" in blind review).  It resolves the
answer against the fact registry:

* key/extra fact coverage (signature detection),
* registered falsehoods asserted by the answer,
* generic fabrications: a PETSc-style identifier that exists neither in
  the corpus nor in the registry, asserted to exist ("``X`` is a ..."),
* grounded refusals ("there is no PETSc function named ...").

and maps the findings onto the rubric exactly as Section V-A describes
(e.g. the all-fabrication KSPBurb answer scores 0).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.corpus.facts import FactRegistry
from repro.errors import EvaluationError
from repro.evaluation.benchmark import BenchmarkQuestion
from repro.evaluation.rubric import Score
from repro.utils.textproc import code_tokens, is_petsc_api_identifier

_REFUSAL_RE = re.compile(
    r"no PETSc (?:function|object|option|routine)(?: or \w+)? named|does not exist",
    re.IGNORECASE,
)


@dataclass
class GradedAnswer:
    """The grader's verdict plus its evidence trail."""

    qid: str
    score: Score
    key_found: tuple[str, ...] = ()
    key_missing: tuple[str, ...] = ()
    extra_found: tuple[str, ...] = ()
    extra_missing: tuple[str, ...] = ()
    falsehoods: tuple[str, ...] = ()
    fabrications: tuple[str, ...] = ()
    refusal: bool = False
    justification: str = ""


@dataclass
class BlindGrader:
    """Scores answers on the 0–4 rubric using the fact registry."""

    registry: FactRegistry
    known_identifiers: frozenset[str] = field(default_factory=frozenset)

    # ------------------------------------------------------------- detection
    def _fabricated_identifiers(self, answer: str) -> list[str]:
        """Unknown identifiers the answer asserts to exist."""
        out: list[str] = []
        for ident in dict.fromkeys(code_tokens(answer)):
            if not is_petsc_api_identifier(ident):
                continue
            if ident in self.known_identifiers:
                continue
            if any(ident in f.topics for f in self.registry.facts.values()):
                continue
            if re.search(rf"{re.escape(ident)}\s+is\s+(?:an?|the)\b", answer):
                out.append(ident)
        return out

    # ------------------------------------------------------------- grading
    def grade(self, question: BenchmarkQuestion, answer: str) -> GradedAnswer:
        if not isinstance(answer, str):
            raise EvaluationError(f"answer for {question.qid} must be a string")
        answer_lower = answer.lower()
        facts_found = {
            f.fact_id for f in self.registry.facts.values() if f.appears_in(answer, answer_lower)
        }
        falsehoods = tuple(sorted(
            f.false_id
            for f in self.registry.falsehoods.values()
            if f.appears_in(answer, answer_lower)
        ))
        registered_fabrications = tuple(
            fid for fid in falsehoods if self.registry.falsehood(fid).fabrication
        )
        generic_fabrications = tuple(self._fabricated_identifiers(answer))
        fabrications = tuple(dict.fromkeys(registered_fabrications + generic_fabrications))
        refusal = _REFUSAL_RE.search(answer) is not None

        if question.kind == "nonexistent":
            return self._grade_nonexistent(question, fabrications, falsehoods, refusal)

        key_found = tuple(f for f in question.key_facts if f in facts_found)
        key_missing = tuple(f for f in question.key_facts if f not in facts_found)
        extra_found = tuple(f for f in question.extra_facts if f in facts_found)
        extra_missing = tuple(f for f in question.extra_facts if f not in facts_found)
        key_cov = len(key_found) / len(question.key_facts)

        if fabrications and key_cov == 0.0:
            score, why = Score.NONSENSICAL, (
                f"fabricated {', '.join(fabrications)} with no correct key content"
            )
        elif falsehoods or fabrications:
            bad = ", ".join(dict.fromkeys(falsehoods + fabrications))
            score, why = Score.INCORRECT, f"contains incorrect statements: {bad}"
        elif key_cov == 1.0 and not extra_missing:
            score, why = Score.IDEAL, "all key and expert-level facts present, nothing wrong"
        elif key_cov == 1.0:
            score, why = Score.CORRECT, (
                f"all key facts present; missing expert detail: {', '.join(extra_missing)}"
            )
        elif key_cov >= 0.5:
            score, why = Score.MINOR_INACCURACIES, (
                f"partially correct; missing key facts: {', '.join(key_missing)}"
            )
        elif key_found or (facts_found and refusal):
            score, why = Score.MINOR_INACCURACIES, "some correct material but incomplete"
        else:
            score, why = Score.INCORRECT, "does not address the question's key facts"

        return GradedAnswer(
            qid=question.qid,
            score=score,
            key_found=key_found,
            key_missing=key_missing,
            extra_found=extra_found,
            extra_missing=extra_missing,
            falsehoods=falsehoods,
            fabrications=fabrications,
            refusal=refusal,
            justification=why,
        )

    def _grade_nonexistent(
        self,
        question: BenchmarkQuestion,
        fabrications: tuple[str, ...],
        falsehoods: tuple[str, ...],
        refusal: bool,
    ) -> GradedAnswer:
        if fabrications:
            score, why = Score.NONSENSICAL, (
                f"hallucinated a description of a fictitious API: {', '.join(fabrications)}"
            )
        elif refusal and not falsehoods:
            score, why = Score.IDEAL, "correctly identified the API as nonexistent"
        elif refusal:
            score, why = Score.MINOR_INACCURACIES, "refused but added inaccurate statements"
        else:
            score, why = Score.INCORRECT, "neither refused nor fabricated cleanly"
        return GradedAnswer(
            qid=question.qid,
            score=score,
            falsehoods=falsehoods,
            fabrications=fabrications,
            refusal=refusal,
            justification=why,
        )
