"""The paper's two case studies (Figs. 7 and 8).

Case study 1 — the non-square / rectangular matrix question: plain RAG
fails to surface the "KSP can also be used to solve least squares
problems, using, for example, KSPLSQR" passage; reranking-enhanced RAG
retrieves it and the answer recommends KSPLSQR.

Case study 2 — the preallocation-diagnostic question: plain RAG misses
the paragraph about ``-info`` printing preallocation success during
matrix assembly; the model hallucinates an imaginary runtime option,
while reranking-enhanced RAG retrieves the paragraph.

``run_case_study`` executes one question under both configurations and
reports the retrieved contexts, the answers, the blind grades, and the
context overlap (the paper observed only one common context out of four
in case study 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EvaluationError
from repro.evaluation.benchmark import BenchmarkQuestion, krylov_benchmark
from repro.evaluation.grader import BlindGrader, GradedAnswer
from repro.pipeline.rag import PipelineResult, RAGPipeline

#: The benchmark questions the paper's case studies correspond to.
CASE_STUDY_1_QID = "Q02"
CASE_STUDY_2_QID = "Q03"

#: The critical passages the reranker must surface (paper quotes).
CASE_STUDY_1_MARKER = "KSPLSQR"
CASE_STUDY_2_MARKER = "-info"


@dataclass
class CaseStudyResult:
    """Side-by-side comparison of RAG vs reranking-enhanced RAG."""

    question: BenchmarkQuestion
    rag: PipelineResult
    rerank: PipelineResult
    rag_grade: GradedAnswer
    rerank_grade: GradedAnswer
    marker: str = ""
    common_contexts: list[str] = field(default_factory=list)

    @property
    def rag_sources(self) -> list[str]:
        return [str(c.document.metadata.get("source", "")) for c in self.rag.contexts]

    @property
    def rerank_sources(self) -> list[str]:
        return [str(c.document.metadata.get("source", "")) for c in self.rerank.contexts]

    def marker_in_rag_context(self) -> bool:
        return any(self.marker in c.document.text for c in self.rag.contexts)

    def marker_in_rerank_context(self) -> bool:
        return any(self.marker in c.document.text for c in self.rerank.contexts)

    def render(self) -> str:
        lines = [
            f"Question ({self.question.qid}): {self.question.text}",
            "",
            f"--- LLM with RAG (score {int(self.rag_grade.score)}) ---",
            self.rag.answer,
            "",
            f"--- LLM with reranking-enhanced RAG (score {int(self.rerank_grade.score)}) ---",
            self.rerank.answer,
            "",
            f"critical passage {self.marker!r}: "
            f"in RAG context = {self.marker_in_rag_context()}, "
            f"in rerank context = {self.marker_in_rerank_context()}",
            f"contexts in common: {len(self.common_contexts)} of "
            f"{len(self.rerank.contexts)}",
        ]
        return "\n".join(lines)


def run_case_study(
    qid: str,
    service,
    rerank_pipeline=None,
    grader: BlindGrader | None = None,
) -> CaseStudyResult:
    """Execute one case-study question under both configurations.

    Preferred form — ``run_case_study(qid, service, grader)`` with a
    multi-mode (engine-backed) :class:`~repro.service.ReproService`
    serving both the ``rag`` and ``rag+rerank`` runs through the request
    lifecycle.  Legacy form — ``run_case_study(qid, rag_pipeline,
    rerank_pipeline, grader)`` with two bare pipelines, each wrapped in
    an engine-less service on the spot.
    """
    from repro.service import ReproService

    if grader is None:
        # Service form: the third positional argument is the grader.
        grader = rerank_pipeline
        if isinstance(service, RAGPipeline):
            service = ReproService.for_pipeline(service)
        rag_service = rerank_service = service
    else:
        rag_pipeline, rerank_pipeline = service, rerank_pipeline
        if rag_pipeline.mode != "rag" or rerank_pipeline.mode != "rag+rerank":
            raise EvaluationError(
                "case studies need one 'rag' and one 'rag+rerank' pipeline, got "
                f"{rag_pipeline.mode!r} and {rerank_pipeline.mode!r}"
            )
        rag_service = ReproService.for_pipeline(rag_pipeline)
        rerank_service = ReproService.for_pipeline(rerank_pipeline)
    try:
        question = next(q for q in krylov_benchmark() if q.qid == qid)
    except StopIteration:
        raise EvaluationError(f"unknown benchmark question {qid!r}") from None

    marker = {
        CASE_STUDY_1_QID: CASE_STUDY_1_MARKER,
        CASE_STUDY_2_QID: CASE_STUDY_2_MARKER,
    }.get(qid, "")

    rag_result = rag_service.answer(question.text, mode="rag")
    rerank_result = rerank_service.answer(question.text, mode="rag+rerank")
    rag_ids = {c.doc_id for c in rag_result.contexts}
    common = [
        str(c.document.metadata.get("source", ""))
        for c in rerank_result.contexts
        if c.doc_id in rag_ids
    ]
    return CaseStudyResult(
        question=question,
        rag=rag_result,
        rerank=rerank_result,
        rag_grade=grader.grade(question, rag_result.answer),
        rerank_grade=grader.grade(question, rerank_result.answer),
        marker=marker,
        common_contexts=common,
    )
