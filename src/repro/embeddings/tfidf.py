"""Corpus-fitted TF-IDF embeddings with random projection (the "large" model)."""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.embeddings.base import EmbeddingModel
from repro.errors import EmbeddingError
from repro.utils.rng import derive_seed
from repro.utils.textproc import tokenize, word_ngrams


class TfidfEmbedding(EmbeddingModel):
    """TF-IDF vectors projected to a dense space with a fixed Gaussian map.

    Fitting builds the vocabulary and inverse document frequencies from a
    corpus; embedding computes the sparse TF-IDF vector and multiplies by
    a deterministic (seeded) Gaussian projection matrix.  By the
    Johnson-Lindenstrauss lemma the projection approximately preserves
    cosine similarities, so this behaves like a strong lexical embedding
    model, clearly better than low-dimensional feature hashing.

    The projection matrix is materialized lazily one vocabulary row at a
    time (each row is a seeded Gaussian), so memory stays proportional to
    the vocabulary actually used.
    """

    def __init__(self, *, dim: int = 1536, ngram_max: int = 2, name: str | None = None) -> None:
        if dim < 8:
            raise EmbeddingError(f"dim must be >= 8, got {dim}")
        self.dim = dim
        self.ngram_max = ngram_max
        self.name = name or f"tfidf-{dim}-n{ngram_max}"
        self._idf: dict[str, float] = {}
        self._rows: dict[str, np.ndarray] = {}
        self._fitted = False

    # ----------------------------------------------------------------- fitting
    def fit(self, corpus_texts: list[str]) -> "TfidfEmbedding":
        """Learn vocabulary and IDF weights from ``corpus_texts``."""
        if not corpus_texts:
            raise EmbeddingError("cannot fit TF-IDF on an empty corpus")
        df: Counter[str] = Counter()
        for text in corpus_texts:
            df.update(set(self._terms(text)))
        n_docs = len(corpus_texts)
        # Smoothed IDF, matching scikit-learn's default formulation.
        self._idf = {t: float(np.log((1 + n_docs) / (1 + c)) + 1.0) for t, c in df.items()}
        self._fitted = True
        return self

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def vocabulary_size(self) -> int:
        return len(self._idf)

    # ----------------------------------------------------------------- embedding
    def _terms(self, text: str) -> list[str]:
        tokens = tokenize(text)
        terms = list(tokens)
        for n in range(2, self.ngram_max + 1):
            terms.extend(" ".join(g) for g in word_ngrams(tokens, n))
        return terms

    def _projection_row(self, term: str) -> np.ndarray:
        row = self._rows.get(term)
        if row is None:
            rng = np.random.default_rng(derive_seed("tfidf-proj", self.dim, term))
            row = rng.standard_normal(self.dim).astype(np.float32)
            self._rows[term] = row
        return row

    def _embed_batch(self, texts: list[str]) -> np.ndarray:
        if not self._fitted:
            raise EmbeddingError(f"{self.name} must be fit() before embedding")
        out = np.zeros((len(texts), self.dim), dtype=np.float32)
        # Out-of-vocabulary terms are dropped: they cannot match any
        # document, and giving them weight only injects projection noise
        # into the query vector.
        for row_i, text in enumerate(texts):
            counts = Counter(self._terms(text))
            terms = [t for t in counts if t in self._idf]
            if not terms:
                continue
            weights = np.array(
                [(1.0 + np.log(counts[t])) * self._idf[t] for t in terms],
                dtype=np.float32,
            )
            # Stack the needed projection rows once, then one GEMV.
            proj = np.stack([self._projection_row(t) for t in terms])
            out[row_i] = weights @ proj
        return out
