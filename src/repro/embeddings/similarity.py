"""Vectorized similarity kernels shared by the vector store and rerankers."""

from __future__ import annotations

import numpy as np

from repro.errors import EmbeddingError


def cosine_similarity_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cosine similarity between every row of ``a`` and every row of ``b``.

    Inputs need not be normalized.  Returns an ``(len(a), len(b))`` array.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.float32))
    b = np.atleast_2d(np.asarray(b, dtype=np.float32))
    if a.shape[1] != b.shape[1]:
        raise EmbeddingError(f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}")
    an = np.linalg.norm(a, axis=1, keepdims=True)
    bn = np.linalg.norm(b, axis=1, keepdims=True)
    np.maximum(an, np.finfo(np.float32).tiny, out=an)
    np.maximum(bn, np.finfo(np.float32).tiny, out=bn)
    return (a / an) @ (b / bn).T


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, in descending score order.

    Uses ``argpartition`` (O(n)) followed by a sort of only the top slice,
    the standard trick for k ≪ n.  Ties break deterministically by lower
    index first.
    """
    scores = np.asarray(scores)
    if scores.ndim != 1:
        raise EmbeddingError(f"scores must be 1-D, got shape {scores.shape}")
    k = min(k, scores.shape[0])
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    part = np.argpartition(-scores, k - 1)[:k]
    # argpartition makes an arbitrary choice among elements tied at the
    # k-th score, so widen to every index tied with that boundary score
    # before the deterministic (-score, index) sort — otherwise top-k is
    # not a prefix of top-(k+1) when ties straddle the cut.
    cand = np.nonzero(scores >= scores[part].min())[0]
    order = np.lexsort((cand, -scores[cand]))
    return cand[order[:k]]
