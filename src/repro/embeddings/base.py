"""Embedding model interface."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import EmbeddingError


class EmbeddingModel(ABC):
    """Maps texts to L2-normalized dense ``float32`` vectors.

    Subclasses implement :meth:`_embed_batch`; the base class handles
    input validation, normalization, and the query/document split (some
    real models embed queries differently; ours treat them the same but
    the API mirrors the standard shape).
    """

    #: Model identifier (registry key and persistence tag).
    name: str = "base"
    #: Output dimensionality.
    dim: int = 0

    @abstractmethod
    def _embed_batch(self, texts: list[str]) -> np.ndarray:
        """Return an (n, dim) float32 array; rows need not be normalized."""

    def embed_documents(self, texts: list[str]) -> np.ndarray:
        """Embed a batch of document texts → (n, dim), rows L2-normalized."""
        if not isinstance(texts, list):
            raise EmbeddingError(f"expected a list of texts, got {type(texts).__name__}")
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float32)
        for i, t in enumerate(texts):
            if not isinstance(t, str):
                raise EmbeddingError(f"texts[{i}] is {type(t).__name__}, expected str")
        mat = np.ascontiguousarray(self._embed_batch(texts), dtype=np.float32)
        if mat.shape != (len(texts), self.dim):
            raise EmbeddingError(
                f"{self.name}: bad embedding shape {mat.shape}, expected {(len(texts), self.dim)}"
            )
        return _normalize_rows(mat)

    def embed_query(self, text: str) -> np.ndarray:
        """Embed one query string → (dim,), L2-normalized."""
        return self.embed_documents([text])[0]


def _normalize_rows(mat: np.ndarray) -> np.ndarray:
    """L2-normalize rows in place; all-zero rows are left as zeros."""
    norms = np.linalg.norm(mat, axis=1, keepdims=True)
    np.maximum(norms, np.finfo(np.float32).tiny, out=norms)
    mat /= norms
    return mat
