"""Deterministic local embedding models.

The paper evaluates multiple hosted embedding models (OpenAI
``text-embedding-3-large`` performed best).  This package provides
offline, deterministic stand-ins with genuinely different retrieval
quality so the paper's model-comparison methodology can run end to end:

* :class:`HashingEmbedding` — signed feature hashing of token n-grams
  (cheap, no fitting, quality scales with dimension/n-gram order).
* :class:`TfidfEmbedding` — corpus-fitted TF-IDF with a deterministic
  Gaussian random projection to a dense vector (the strongest model).

All models produce L2-normalized ``float32`` matrices; similarity is an
inner product computed as one GEMV/GEMM over a contiguous matrix (see
the HPC guide notes in DESIGN.md).
"""

from repro.embeddings.base import EmbeddingModel
from repro.embeddings.hashing import HashingEmbedding
from repro.embeddings.tfidf import TfidfEmbedding
from repro.embeddings.registry import (
    EMBEDDING_MODEL_NAMES,
    create_embedding_model,
)
from repro.embeddings.similarity import cosine_similarity_matrix, top_k_indices

__all__ = [
    "EmbeddingModel",
    "HashingEmbedding",
    "TfidfEmbedding",
    "EMBEDDING_MODEL_NAMES",
    "create_embedding_model",
    "cosine_similarity_matrix",
    "top_k_indices",
]
