"""Signed feature-hashing embeddings (the "small / fast" model family)."""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.embeddings.base import EmbeddingModel
from repro.errors import EmbeddingError
from repro.utils.rng import stable_hash
from repro.utils.textproc import tokenize, word_ngrams


class HashingEmbedding(EmbeddingModel):
    """Embeds text by hashing token n-grams into signed buckets.

    Each n-gram hashes to a bucket index and a sign; term weight is
    sublinear term frequency (``1 + log tf``).  Collisions are the model's
    quality limit: smaller dimensions collide more, approximating a
    weaker embedding model.

    Parameters
    ----------
    dim:
        Number of hash buckets (output dimensionality).
    ngram_max:
        Maximum n-gram order (1 = unigrams only; 2 adds bigrams, which
        substantially improves phrase sensitivity).
    """

    def __init__(self, *, dim: int = 512, ngram_max: int = 2, name: str | None = None) -> None:
        if dim < 8:
            raise EmbeddingError(f"dim must be >= 8, got {dim}")
        if ngram_max < 1:
            raise EmbeddingError(f"ngram_max must be >= 1, got {ngram_max}")
        self.dim = dim
        self.ngram_max = ngram_max
        self.name = name or f"hashing-{dim}-n{ngram_max}"
        # Per-instance hash cache: token n-grams repeat heavily across a
        # corpus, so memoizing (index, sign) avoids rehashing hot terms.
        self._cache: dict[str, tuple[int, float]] = {}

    def _bucket(self, term: str) -> tuple[int, float]:
        cached = self._cache.get(term)
        if cached is not None:
            return cached
        idx = stable_hash(term, namespace="hash-idx") % self.dim
        sign = 1.0 if stable_hash(term, namespace="hash-sign") & 1 else -1.0
        self._cache[term] = (idx, sign)
        return idx, sign

    def _terms(self, text: str) -> Counter[str]:
        tokens = tokenize(text)
        counts: Counter[str] = Counter(tokens)
        for n in range(2, self.ngram_max + 1):
            counts.update(" ".join(g) for g in word_ngrams(tokens, n))
        return counts

    def _embed_batch(self, texts: list[str]) -> np.ndarray:
        out = np.zeros((len(texts), self.dim), dtype=np.float32)
        for row, text in enumerate(texts):
            counts = self._terms(text)
            if not counts:
                continue
            idxs = np.empty(len(counts), dtype=np.int64)
            vals = np.empty(len(counts), dtype=np.float32)
            for j, (term, tf) in enumerate(counts.items()):
                idx, sign = self._bucket(term)
                idxs[j] = idx
                vals[j] = sign * (1.0 + np.log(tf))
            # Accumulate with np.add.at: colliding buckets must sum.
            np.add.at(out[row], idxs, vals)
        return out
