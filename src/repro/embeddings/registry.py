"""Named embedding models, mirroring the hosted models the paper compares.

========================  ===============================================
Registry name             Stand-in for
========================  ===============================================
petsc-embed-large         OpenAI text-embedding-3-large (best quality;
                          corpus-fitted TF-IDF + 1536-d projection)
petsc-embed-small         OpenAI text-embedding-3-small (512-d hashing
                          with bigrams)
petsc-embed-mini          a weak open model (256-d unigram hashing)
========================  ===============================================
"""

from __future__ import annotations

from repro.embeddings.base import EmbeddingModel
from repro.embeddings.hashing import HashingEmbedding
from repro.embeddings.tfidf import TfidfEmbedding
from repro.errors import EmbeddingError

EMBEDDING_MODEL_NAMES: tuple[str, ...] = (
    "petsc-embed-large",
    "petsc-embed-small",
    "petsc-embed-mini",
)


def is_corpus_fitted(name: str) -> bool:
    """Whether a model's vectors depend on the corpus it was fitted over.

    Corpus-fitted models couple every shard of a sharded index to the
    full corpus (any document edit shifts the global IDF table, so all
    shard caches go stale together); hashing models are corpus-free and
    let a one-document edit dirty exactly one shard.
    """
    if name not in EMBEDDING_MODEL_NAMES:
        raise EmbeddingError(
            f"unknown embedding model {name!r}; known models: {', '.join(EMBEDDING_MODEL_NAMES)}"
        )
    return name == "petsc-embed-large"


def create_embedding_model(
    name: str, *, corpus_texts: list[str] | None = None
) -> EmbeddingModel:
    """Instantiate a registered embedding model.

    ``petsc-embed-large`` is corpus-fitted and therefore requires
    ``corpus_texts``; the hashing models ignore it.
    """
    if name == "petsc-embed-large":
        if corpus_texts is None:
            raise EmbeddingError(
                "petsc-embed-large is corpus-fitted; pass corpus_texts to create it"
            )
        return TfidfEmbedding(dim=1536, ngram_max=2, name=name).fit(corpus_texts)
    if name == "petsc-embed-small":
        return HashingEmbedding(dim=512, ngram_max=2, name=name)
    if name == "petsc-embed-mini":
        return HashingEmbedding(dim=256, ngram_max=1, name=name)
    raise EmbeddingError(
        f"unknown embedding model {name!r}; known models: {', '.join(EMBEDDING_MODEL_NAMES)}"
    )
