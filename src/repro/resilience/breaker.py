"""Circuit breaker: stop hammering a hop that is failing hard.

Classic closed → open → half-open state machine.  The clock is
injectable (``time.monotonic`` by default) so the state machine can be
driven deterministically in tests and chaos runs — no sleeping to wait
out a recovery window.
"""

from __future__ import annotations

import enum
import time
from typing import Callable, TypeVar

from repro.config import ResilienceConfig
from repro.errors import CircuitOpenError, ConfigurationError, is_retry_safe
from repro.observability.metrics import get_registry

T = TypeVar("T")


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Trips open after ``failure_threshold`` consecutive failures.

    While open, calls fail fast with :class:`CircuitOpenError` (no load
    reaches the protected hop).  After ``recovery_seconds`` the breaker
    goes half-open and admits probe calls; ``half_open_max`` consecutive
    probe successes close it, any probe failure re-opens it.

    Only retry-safe (transient) errors count toward tripping: a
    permanent error like a context overflow says nothing about the
    health of the hop.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 8,
        recovery_seconds: float = 30.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
        name: str = "breaker",
    ) -> None:
        if failure_threshold <= 0:
            raise ConfigurationError(f"failure_threshold must be positive, got {failure_threshold}")
        if recovery_seconds < 0:
            raise ConfigurationError(f"recovery_seconds must be >= 0, got {recovery_seconds}")
        if half_open_max <= 0:
            raise ConfigurationError(f"half_open_max must be positive, got {half_open_max}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self.half_open_max = half_open_max
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at = 0.0
        # Lifetime counters, surfaced by chaos reports.
        self.calls_allowed = 0
        self.calls_rejected = 0
        self.times_opened = 0

    @classmethod
    def from_config(cls, config: ResilienceConfig, *, name: str = "breaker") -> "CircuitBreaker":
        return cls(
            failure_threshold=config.breaker_failure_threshold,
            recovery_seconds=config.breaker_recovery_seconds,
            half_open_max=config.breaker_half_open_max,
            name=name,
        )

    # ------------------------------------------------------------ state
    @property
    def state(self) -> BreakerState:
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.recovery_seconds
        ):
            self._state = BreakerState.HALF_OPEN
            self._probe_successes = 0
        return self._state

    def allow(self) -> None:
        """Admit or reject one call; raises :class:`CircuitOpenError` if open."""
        if self.state is BreakerState.OPEN:
            self.calls_rejected += 1
            get_registry().counter("repro.resilience.breaker_rejections").inc()
            remaining = self.recovery_seconds - (self._clock() - self._opened_at)
            raise CircuitOpenError(
                f"circuit {self.name!r} is open ({self._consecutive_failures} consecutive "
                f"failures); retry in {max(0.0, remaining):.3f}s"
            )
        self.calls_allowed += 1

    def record_success(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_max:
                self._state = BreakerState.CLOSED
                self._consecutive_failures = 0
        else:
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self.times_opened += 1
        get_registry().counter("repro.resilience.breaker_opened").inc()

    # ------------------------------------------------------------ calls
    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` under the breaker, updating state from its outcome."""
        self.allow()
        try:
            result = fn()
        except BaseException as exc:
            if is_retry_safe(exc):
                self.record_failure()
            raise
        self.record_success()
        return result
