"""Deterministic fault injection for chaos runs.

A :class:`FaultInjector` sits in front of any hop in the support stack —
the chat model, a retriever, a reranker, a webhook post, a mail
delivery — and, per call, either passes the call through or injects one
of three failure modes:

* ``transient`` — raises :class:`~repro.errors.TransientError`;
* ``latency``  — a latency spike, accounted (not slept) on the result;
* ``truncate`` — the LLM reply is cut short (``finish_reason="length"``).

Every decision is a pure function of ``(seed, site, call_index)`` via
:func:`repro.utils.rng.rng_for`, so the full fault schedule of a chaos
run is reproducible byte for byte — the property "RAG Without the Lag"
style debugging needs from a harness.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, TypeVar

from repro.errors import ConfigurationError, SimulatedCrashError, TransientError
from repro.llm.base import ChatMessage, ChatModel, CompletionResult
from repro.observability.metrics import get_registry
from repro.rerank.base import Reranker, RerankResult
from repro.retrieval.base import RetrievedDocument, Retriever
from repro.utils.rng import rng_for

if TYPE_CHECKING:
    from repro.context import RequestContext

T = TypeVar("T")

_FAULT_NS = "fault-injector"

OK = "ok"
TRANSIENT = "transient"
LATENCY = "latency"
TRUNCATE = "truncate"


@dataclass(frozen=True)
class FaultConfig:
    """Per-call injection rates; the three rates must sum to <= 1.

    ``shard_fault_rate`` is a separate site class: the transient-failure
    rate applied at per-shard store sites (``shard:3``) by
    :meth:`FaultInjector.wrap_store`, independent of the hop-rate trio.
    """

    transient_rate: float = 0.0
    latency_spike_rate: float = 0.0
    truncation_rate: float = 0.0
    latency_spike_seconds: float = 0.75
    shard_fault_rate: float = 0.0

    def __post_init__(self) -> None:
        for label, rate in (
            ("transient_rate", self.transient_rate),
            ("latency_spike_rate", self.latency_spike_rate),
            ("truncation_rate", self.truncation_rate),
            ("shard_fault_rate", self.shard_fault_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{label} must be in [0, 1], got {rate}")
        total = self.transient_rate + self.latency_spike_rate + self.truncation_rate
        if total > 1.0:
            raise ConfigurationError(f"fault rates must sum to <= 1, got {total}")
        if self.latency_spike_seconds < 0:
            raise ConfigurationError(
                f"latency_spike_seconds must be >= 0, got {self.latency_spike_seconds}"
            )


@dataclass(frozen=True)
class FaultEvent:
    """One injection decision, in the order it was made at its site."""

    site: str
    call_index: int
    kind: str


class FaultInjector:
    """Seeded chaos source; wraps hops and records every decision."""

    def __init__(self, seed: int, config: FaultConfig) -> None:
        self.seed = seed
        self.config = config
        self._counters: dict[str, int] = {}
        self._events: list[FaultEvent] = []

    # ------------------------------------------------------------ decisions
    def decide(self, site: str, *, rates: FaultConfig | None = None) -> str:
        """The fault kind for the next call at ``site`` (deterministic).

        ``rates`` overrides the rate table for this call (per-shard
        store sites fault at ``shard_fault_rate``, not the hop trio);
        the draw, counter, and recorded schedule are shared either way.
        """
        n = self._counters.get(site, 0)
        self._counters[site] = n + 1
        u = float(rng_for(_FAULT_NS, self.seed, site, n).random())
        c = rates if rates is not None else self.config
        if u < c.transient_rate:
            kind = TRANSIENT
        elif u < c.transient_rate + c.latency_spike_rate:
            kind = LATENCY
        elif u < c.transient_rate + c.latency_spike_rate + c.truncation_rate:
            kind = TRUNCATE
        else:
            kind = OK
        self._events.append(FaultEvent(site=site, call_index=n, kind=kind))
        if kind != OK:
            get_registry().counter(f"repro.resilience.faults_{kind}").inc()
        return kind

    def _maybe_raise(self, site: str, *, rates: FaultConfig | None = None) -> str:
        kind = self.decide(site, rates=rates)
        if kind == TRANSIENT:
            n = self._counters[site] - 1
            raise TransientError(f"injected transient fault at {site!r} (call {n})")
        return kind

    # ------------------------------------------------------------ schedule
    def schedule(self) -> list[FaultEvent]:
        """Every decision made so far, in order."""
        return list(self._events)

    def schedule_digest(self) -> str:
        """SHA-256 over the canonical JSON schedule — byte-identical across
        runs with the same seed, config, and call pattern."""
        payload = json.dumps(
            [[e.site, e.call_index, e.kind] for e in self._events],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def fault_counts(self) -> dict[str, int]:
        counts = {OK: 0, TRANSIENT: 0, LATENCY: 0, TRUNCATE: 0}
        for e in self._events:
            counts[e.kind] += 1
        return counts

    # ------------------------------------------------------------ wrappers
    def wrap_callable(self, site: str, fn: Callable[..., T]) -> Callable[..., T]:
        """Chaos-wrap a plain callable hop (webhook post, mail delivery)."""

        def wrapped(*args, **kwargs):
            self._maybe_raise(site)
            return fn(*args, **kwargs)

        return wrapped

    def wrap_model(self, model: ChatModel, *, site: str = "llm") -> "FaultyChatModel":
        return FaultyChatModel(model, injector=self, site=site)

    def wrap_retriever(self, retriever: Retriever, *, site: str = "retriever") -> "FaultyRetriever":
        return FaultyRetriever(retriever, injector=self, site=site)

    def wrap_reranker(self, reranker: Reranker, *, site: str = "reranker") -> "FaultyReranker":
        return FaultyReranker(reranker, injector=self, site=site)

    def wrap_store(
        self, store, *, site: str, transient_rate: float | None = None
    ) -> "FaultyVectorStore":
        """Chaos-wrap a shard store at a per-shard site like ``shard:3``.

        Store faults are transient-only (a dead copy either answers or
        it does not) and fault at ``transient_rate`` when given, else
        ``config.shard_fault_rate`` — so shard outages join the seeded
        schedule/digest machinery without disturbing the hop-rate trio.
        """
        rate = (
            transient_rate
            if transient_rate is not None
            else self.config.shard_fault_rate
        )
        return FaultyVectorStore(
            store,
            injector=self,
            site=site,
            rates=FaultConfig(transient_rate=rate),
        )


class CrashPointInjector:
    """Simulated process death at named crash points.

    ``points`` is a set of ``(site, call_index)`` pairs; the injector
    counts calls per site and raises :class:`SimulatedCrashError` when a
    scheduled point is reached, *before* the guarded operation runs —
    the disk is left exactly as a real crash there would leave it.
    Duck-typed against :class:`repro.durability.atomic.CrashHook`, so the
    durability layer stays below the resilience layer.
    """

    def __init__(self, points: "set[tuple[str, int]] | list[tuple[str, int]]") -> None:
        self.points = set(points)
        self.fired: list[tuple[str, int]] = []
        self._counters: dict[str, int] = {}

    def check(self, site: str) -> None:
        n = self._counters.get(site, 0)
        self._counters[site] = n + 1
        if (site, n) in self.points:
            self.fired.append((site, n))
            get_registry().counter("repro.resilience.crash_points").inc()
            raise SimulatedCrashError(
                f"simulated crash at {site!r} (call {n})"
            )


class TornWriteInjector:
    """Cut one journal frame short mid-write, then "crash".

    The ``record_index``-th append writes only the first ``cut_at``
    bytes of its frame before the simulated process death — exactly the
    state a power loss mid-write leaves behind, which is what
    :func:`repro.durability.recover_journal` must recover from.
    Duck-typed against :class:`repro.durability.journal.TornWriteHook`.
    """

    def __init__(self, *, record_index: int, cut_at: int) -> None:
        if record_index < 0:
            raise ConfigurationError(
                f"record_index must be >= 0, got {record_index}"
            )
        if cut_at < 0:
            raise ConfigurationError(f"cut_at must be >= 0, got {cut_at}")
        self.record_index = record_index
        self.cut_at = cut_at
        self.fired = False
        self._n = 0

    def intercept(self, frame: bytes) -> tuple[bytes, bool]:
        i = self._n
        self._n += 1
        if i == self.record_index:
            self.fired = True
            get_registry().counter("repro.resilience.torn_writes").inc()
            return frame[: min(self.cut_at, len(frame))], True
        return frame, False


class FaultyChatModel(ChatModel):
    """A chat model behind a flaky transport."""

    def __init__(self, inner: ChatModel, *, injector: FaultInjector, site: str = "llm") -> None:
        self.inner = inner
        self.injector = injector
        self.site = site
        self.name = inner.name
        self.context_window = inner.context_window

    def complete(
        self, messages: list[ChatMessage], *, ctx: "RequestContext | None" = None
    ) -> CompletionResult:
        kind = self.injector._maybe_raise(self.site)
        result = self.inner.complete(messages, ctx=ctx)
        if kind == LATENCY:
            # Accounted, not slept: the simulation books time explicitly.
            result.latency_seconds += self.injector.config.latency_spike_seconds
        elif kind == TRUNCATE and len(result.text) > 1:
            result.text = result.text[: max(1, len(result.text) // 2)].rstrip()
            result.finish_reason = "length"
        return result


class FaultyVectorStore:
    """A shard replica behind a flaky transport.

    Only search probes fault (the scatter path is what failover
    protects); mutations and lookups delegate untouched, so a wrapped
    replica stays byte-identical to its siblings under writes.
    """

    def __init__(
        self, inner, *, injector: FaultInjector, site: str, rates: FaultConfig
    ) -> None:
        self.inner = inner
        self.injector = injector
        self.site = site
        self._rates = rates

    @property
    def embedding(self):
        return self.inner.embedding

    @property
    def collection_name(self):
        return self.inner.collection_name

    def similarity_search_by_vector_with_score(self, qvec, *, k=4, where=None):
        self.injector._maybe_raise(self.site, rates=self._rates)
        return self.inner.similarity_search_by_vector_with_score(qvec, k=k, where=where)

    def similarity_search_with_score(self, query, *, k=4, where=None):
        self.injector._maybe_raise(self.site, rates=self._rates)
        return self.inner.similarity_search_with_score(query, k=k, where=where)

    def similarity_search(self, query, *, k=4, where=None):
        return [
            doc for doc, _ in self.similarity_search_with_score(query, k=k, where=where)
        ]

    def add_documents(self, documents):
        return self.inner.add_documents(documents)

    def _add_documents(self, documents):
        # Internal write path (ingest fan-out): delegate without the
        # deprecation warning the public method now carries.
        return self.inner._add_documents(documents)

    def delete(self, ids):
        return self.inner.delete(ids)

    def get(self, doc_id):
        return self.inner.get(doc_id)

    def __len__(self) -> int:
        return len(self.inner)

    def fork(self, *, embedding=None):
        # Forks are fresh healthy copies: the flaky transport belongs to
        # this serving replica, not to the data it carries.
        return self.inner.fork(embedding=embedding)


class FaultyRetriever(Retriever):
    """A retriever behind a flaky transport."""

    def __init__(self, inner: Retriever, *, injector: FaultInjector, site: str = "retriever") -> None:
        self.inner = inner
        self.injector = injector
        self.site = site
        self.name = inner.name

    def retrieve(
        self, query: str, *, k: int = 8, ctx: "RequestContext | None" = None
    ) -> list[RetrievedDocument]:
        self.injector._maybe_raise(self.site)
        return self.inner.retrieve(query, k=k, ctx=ctx)


class FaultyReranker(Reranker):
    """A reranker behind a flaky transport."""

    def __init__(self, inner: Reranker, *, injector: FaultInjector, site: str = "reranker") -> None:
        self.inner = inner
        self.injector = injector
        self.site = site
        self.name = inner.name

    def score_pairs(self, query: str, texts: list[str]) -> list[float]:
        return self.inner.score_pairs(query, texts)

    def rerank(
        self,
        query: str,
        candidates: list[RetrievedDocument],
        *,
        top_n: int = 4,
        min_score: float | None = None,
        ctx: "RequestContext | None" = None,
    ) -> list[RerankResult]:
        self.injector._maybe_raise(self.site)
        return self.inner.rerank(
            query, candidates, top_n=top_n, min_score=min_score, ctx=ctx
        )
