"""Retry policy with deterministic exponential backoff, plus deadlines.

Backoff jitter is the classic thundering-herd decorrelator, but
wall-clock randomness would make chaos runs unreproducible.  Delays are
therefore derived from :func:`repro.utils.rng.rng_for` keyed by the
retried call — the *schedule* is a pure function of (policy, key), so
two runs of the same workload back off identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.config import ResilienceConfig
from repro.errors import ConfigurationError, DeadlineExceededError, is_retry_safe
from repro.observability.metrics import get_registry
from repro.utils.rng import rng_for

T = TypeVar("T")

_BACKOFF_NS = "resilience-backoff"


class Deadline:
    """A wall-clock budget for one logical operation.

    The clock is injectable so tests (and the simulation) can drive time
    explicitly instead of sleeping.
    """

    def __init__(self, budget_seconds: float, *, clock: Callable[[], float] = time.monotonic) -> None:
        if budget_seconds <= 0:
            raise ConfigurationError(f"deadline budget must be positive, got {budget_seconds}")
        self._clock = clock
        self.budget_seconds = budget_seconds
        self._start = clock()

    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> float:
        return self.budget_seconds - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def require(self, seconds: float = 0.0) -> None:
        """Raise unless at least ``seconds`` of budget remain."""
        if self.remaining() < seconds:
            raise DeadlineExceededError(
                f"deadline of {self.budget_seconds:.3f}s exceeded "
                f"(elapsed {self.elapsed():.3f}s, needed {seconds:.3f}s more)"
            )


@dataclass
class RetryOutcome:
    """What one resilient execution did, for surfacing in results."""

    value: object
    attempts: int
    backoff_total: float = 0.0
    errors: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff + deterministic jitter over ``max_attempts`` tries."""

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ConfigurationError(f"max_attempts must be positive, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ConfigurationError(
                f"invalid delay range: base={self.base_delay}, max={self.max_delay}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1), got {self.jitter}")

    @classmethod
    def from_config(cls, config: ResilienceConfig) -> "RetryPolicy":
        return cls(
            max_attempts=config.max_attempts,
            base_delay=config.backoff_base_seconds,
            max_delay=config.backoff_max_seconds,
            multiplier=config.backoff_multiplier,
            jitter=config.jitter,
        )

    # ------------------------------------------------------------ schedule
    def backoff_schedule(self, *key: str | int) -> list[float]:
        """The delays slept between attempts, deterministic in ``key``.

        ``len(schedule) == max_attempts - 1``: no delay after the final
        (failed) attempt.
        """
        rng = rng_for(_BACKOFF_NS, *key)
        delays: list[float] = []
        for attempt in range(self.max_attempts - 1):
            raw = min(self.max_delay, self.base_delay * self.multiplier**attempt)
            # Jitter scales the delay into [1-j, 1+j) of its nominal value.
            factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            delays.append(raw * factor)
        return delays

    # ------------------------------------------------------------ execution
    def execute(
        self,
        fn: Callable[[], T],
        *,
        key: tuple[str | int, ...] = ("default",),
        deadline: Deadline | None = None,
        sleep: Callable[[float], None] | None = None,
        classify: Callable[[BaseException], bool] = is_retry_safe,
    ) -> RetryOutcome:
        """Call ``fn`` until it succeeds, retrying retry-safe errors.

        ``sleep=None`` (the default) computes the backoff schedule but
        does not block — right for the simulation, where latency is
        accounted rather than endured.  Pass ``time.sleep`` to actually
        wait.  Non-retry-safe errors and exhaustion re-raise the last
        error; an exhausted ``deadline`` raises
        :class:`DeadlineExceededError` chained to it.
        """
        delays = self.backoff_schedule(*key)
        backoff_total = 0.0
        errors: list[str] = []
        for attempt in range(1, self.max_attempts + 1):
            if deadline is not None:
                deadline.require()
            try:
                value = fn()
            except BaseException as exc:
                errors.append(f"{type(exc).__name__}: {exc}")
                if not classify(exc) or attempt == self.max_attempts:
                    raise
                get_registry().counter("repro.resilience.retries").inc()
                delay = delays[attempt - 1]
                if deadline is not None and deadline.remaining() < delay:
                    get_registry().counter("repro.resilience.deadline_exceeded").inc()
                    raise DeadlineExceededError(
                        f"deadline exhausted before retry {attempt + 1} "
                        f"(backoff {delay:.3f}s > remaining {deadline.remaining():.3f}s)"
                    ) from exc
                backoff_total += delay
                if sleep is not None:
                    sleep(delay)
            else:
                return RetryOutcome(
                    value=value, attempts=attempt, backoff_total=backoff_total, errors=errors
                )
        raise AssertionError("unreachable: loop either returns or raises")
