"""Resilience layer: retries, circuit breaking, and seeded fault injection.

The support stack is a chain of unreliable hops (poller → webhook →
email bot → RAG pipeline → LLM).  This package keeps the chain
answering when a hop misbehaves:

* :class:`RetryPolicy` / :class:`Deadline` — exponential backoff with
  deterministic jitter under a wall-clock budget;
* :class:`CircuitBreaker` — stop hammering a hop that is failing hard;
* :class:`FaultInjector` — a seeded chaos source that wraps any hop
  with reproducible transient errors, latency spikes, and truncation.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.faults import (
    CrashPointInjector,
    FaultConfig,
    FaultEvent,
    FaultInjector,
    FaultyChatModel,
    FaultyReranker,
    FaultyRetriever,
    TornWriteInjector,
)
from repro.resilience.policy import Deadline, RetryOutcome, RetryPolicy

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "CrashPointInjector",
    "Deadline",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultyChatModel",
    "FaultyReranker",
    "FaultyRetriever",
    "RetryOutcome",
    "RetryPolicy",
    "TornWriteInjector",
]
