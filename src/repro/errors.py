"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers embedding the assistant stack (e.g. a Discord bot process) can
catch a single base class at the integration boundary while tests can
assert on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class CorpusError(ReproError):
    """The knowledge-base corpus is malformed or missing content."""


class DocumentError(ReproError):
    """A document could not be loaded, parsed, or split."""


class EmbeddingError(ReproError):
    """An embedding model was misused (bad input, unfitted model, ...)."""


class VectorStoreError(ReproError):
    """Vector-store level failure (dimension mismatch, unknown id, ...)."""


class RetrievalError(ReproError):
    """A retriever could not satisfy a query."""


class RerankError(ReproError):
    """A reranker received invalid candidates or scoring failed."""


class ModelError(ReproError):
    """LLM-layer failure (unknown model, context overflow, bad message)."""


class PromptError(ReproError):
    """A prompt template could not be rendered."""


class PostprocessError(ReproError):
    """Markdown/HTML postprocessing failed."""


class CodeCheckError(ReproError):
    """The mini code checker rejected a code block structurally."""


class HistoryError(ReproError):
    """Interaction-history store misuse (duplicate ids, unknown scorer)."""


class MailError(ReproError):
    """Mailing-list / Gmail simulation failure."""


class DiscordSimError(ReproError):
    """Discord simulation failure (unknown channel, permission, ...)."""


class BotError(ReproError):
    """Bot-layer workflow failure (invalid command, bad button state)."""


class EvaluationError(ReproError):
    """Benchmark/grader failure (unknown question, invalid score)."""
