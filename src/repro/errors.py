"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers embedding the assistant stack (e.g. a Discord bot process) can
catch a single base class at the integration boundary while tests can
assert on precise subclasses.

Transient-vs-permanent taxonomy
-------------------------------
Each class carries a ``retry_safe`` flag consumed by
:mod:`repro.resilience`: a *retry-safe* error models a transient hop
failure (network blip, rate limit, injected chaos fault) that a fresh
attempt may clear; everything else is *permanent* — deterministic
misuse or corrupted input that will fail identically on every retry.
Use :func:`is_retry_safe` rather than reading the attribute directly.
"""

from __future__ import annotations

from typing import ClassVar


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""

    #: Whether a retry loop may safely re-attempt the failed operation.
    #: Permanent by default; only transient hop failures opt in.
    retry_safe: ClassVar[bool] = False


class TransientError(ReproError):
    """A transient hop failure (timeout, rate limit, injected fault).

    The one branch of the hierarchy that is retry-safe: the same call
    may succeed on a fresh attempt, so :class:`repro.resilience.RetryPolicy`
    re-attempts it under backoff.
    """

    retry_safe = True


class OverloadedError(ReproError):
    """The admission layer shed a request: the serving stack is at capacity.

    Retry-safe in the transient sense — the same request may succeed once
    load subsides — but callers should honour :attr:`retry_after` (seconds)
    rather than re-attempting immediately, which would only deepen the
    overload the shed is protecting against.
    """

    retry_safe = True

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        super().__init__(message)
        #: Suggested backoff in seconds before the caller retries.
        self.retry_after = retry_after


class SimulatedCrashError(ReproError):
    """A durability fault injector simulated abrupt process death mid-write.

    Raised by crash-point and torn-write injectors after they have left
    the on-disk state exactly as a real crash would (partial frame, stale
    temp file).  Never retry-safe: the "process" is dead; recovery happens
    on the next start via :func:`repro.durability.recover_journal`.
    """


class DeadlineExceededError(ReproError):
    """A retry/deadline budget ran out before the operation succeeded.

    Permanent *for this invocation*: the budget is spent, so retrying
    inside the same call is pointless.
    """


class CircuitOpenError(ReproError):
    """A circuit breaker is open and rejected the call without trying it.

    Not retry-safe within a retry loop — the breaker stays open until
    its recovery timeout elapses, so immediate re-attempts only spin.
    Callers should degrade instead and let a later request probe.
    """


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range. Permanent."""


class ServiceConfigurationError(ConfigurationError):
    """The service's interceptor chain is malformed: a required
    interceptor is missing, duplicated, or out of canonical order, or
    the service was constructed over an inconsistent backend. Permanent
    — the chain is validated at construction, before any request runs.
    """


class CorpusError(ReproError):
    """The knowledge-base corpus is malformed or missing content."""


class DocumentError(ReproError):
    """A document could not be loaded, parsed, or split."""


class EmbeddingError(ReproError):
    """An embedding model was misused (bad input, unfitted model, ...)."""


class VectorStoreError(ReproError):
    """Vector-store level failure (dimension mismatch, unknown id, ...)."""


class PartialResultError(VectorStoreError):
    """A scatter-gather query could not reach every shard and the caller
    demanded full coverage (``ReplicationConfig.require_full_coverage``).

    Retry-safe: shard outages are transient by construction — the health
    tracker keeps probing downed replicas, so a later attempt may see the
    shard recover.  Callers that prefer availability over completeness
    should unset ``require_full_coverage`` and consume the degraded
    result's ``coverage`` instead.
    """

    retry_safe = True

    def __init__(
        self,
        message: str,
        *,
        coverage: float = 0.0,
        failed_shards: tuple[int, ...] = (),
    ) -> None:
        super().__init__(message)
        #: Fraction of shards that answered, in [0, 1).
        self.coverage = coverage
        #: Indices of the shards with no surviving replica.
        self.failed_shards = tuple(failed_shards)


class IndexBuildError(ReproError):
    """Index-artifact construction or cache loading failed.

    Permanent: a corrupt on-disk artifact or digest mismatch will not
    heal on retry — rebuild from the corpus instead.
    """


class IngestError(ReproError):
    """The ingestion lifecycle was misused or a stage's contract broke.

    Permanent: raised for structural problems (delta applied to the
    wrong parent artifact, epoch swap onto a mismatched store, delta
    requested for a corpus-fitted embedding) that will fail identically
    on every retry.  Transient hop failures inside a stage surface as
    :class:`TransientError` as usual.
    """


class RetrievalError(ReproError):
    """A retriever could not satisfy a query.

    Permanent: raised for malformed queries/indexes, not flaky transport.
    Transient retrieval-hop failures surface as :class:`TransientError`.
    """

    retry_safe = False


class RerankError(ReproError):
    """A reranker received invalid candidates or scoring failed. Permanent."""

    retry_safe = False


class ModelError(ReproError):
    """LLM-layer failure (unknown model, context overflow, bad message).

    Permanent: the same conversation will overflow/fail identically on a
    retry.  Flaky LLM transport is modelled as :class:`TransientError`.
    """

    retry_safe = False


class PromptError(ReproError):
    """A prompt template could not be rendered."""


class PostprocessError(ReproError):
    """Markdown/HTML postprocessing failed."""


class CodeCheckError(ReproError):
    """The mini code checker rejected a code block structurally."""


class HistoryError(ReproError):
    """Interaction-history store misuse (duplicate ids, unknown scorer)."""


class MailError(ReproError):
    """Mailing-list / Gmail simulation failure. Permanent (API misuse)."""

    retry_safe = False


class DiscordSimError(ReproError):
    """Discord simulation failure (unknown channel, permission, ...).

    Permanent: unknown channels and missing permissions do not heal on
    retry.  A flaky webhook *transport* raises :class:`TransientError`.
    """

    retry_safe = False


class BotError(ReproError):
    """Bot-layer workflow failure (invalid command, bad button state)."""


class EvaluationError(ReproError):
    """Benchmark/grader failure (unknown question, invalid score)."""


class ObservabilityError(ReproError):
    """Tracing/metrics misuse (bad metric name, span outside a trace)."""


def is_retry_safe(exc: BaseException) -> bool:
    """Whether a retry loop may safely re-attempt after ``exc``.

    Only :class:`ReproError` subclasses that opted in via ``retry_safe``
    qualify; foreign exceptions (bugs, KeyboardInterrupt, ...) never do.
    """
    return isinstance(exc, ReproError) and type(exc).retry_safe
