"""The email bot: mailing list → private forum channel (Fig. 5 arcs 3–4).

Watches the ``petsc-users-notification`` channel for poller webhooks;
on each notification it fetches unread mail from the Gmail account
(marking it read), and posts every email into the ``petsc-users-emails``
forum — one post per thread subject, follow-up mails as messages in the
post, attachments carried over, bodies cleaned of reply quotes and
url-defense wrappers.
"""

from __future__ import annotations

from repro.discordsim.app import App
from repro.discordsim.channels import ForumChannel, ForumPost
from repro.discordsim.gateway import Gateway, MessageEvent
from repro.discordsim.models import Attachment as DiscordAttachment
from repro.discordsim.models import Message
from repro.discordsim.server import Server
from repro.mail.gmail import GmailAccount
from repro.mail.message import EmailMessage
from repro.observability.metrics import get_registry


class EmailBot(App):
    """Fetches unread mailing-list mail and mirrors it into the forum."""

    def __init__(
        self,
        server: Server,
        gateway: Gateway,
        *,
        account: GmailAccount,
        notification_channel: str = "petsc-users-notification",
        forum_channel: str = "petsc-users-emails",
    ) -> None:
        super().__init__(name="petsc-email-bot", server=server, gateway=gateway)
        self.account = account
        self.forum: ForumChannel = server.forum_channel(forum_channel)
        self.emails_mirrored = 0
        self.listen(notification_channel, self._on_notification)

    # ------------------------------------------------------------ event path
    def _on_notification(self, event: MessageEvent) -> None:
        if event.message.author.user_id == self.user.user_id:
            return
        self.sync()

    def sync(self) -> int:
        """Fetch unread mail and mirror it; returns the number mirrored."""
        fetched = self.account.fetch_unread(mark_read=True)
        for email in fetched:
            self._mirror(email)
        self.emails_mirrored += len(fetched)
        if fetched:
            get_registry().counter("repro.bots.emails_mirrored").inc(len(fetched))
        return len(fetched)

    def _mirror(self, email: EmailMessage) -> ForumPost:
        content = f"**From:** {email.sender}\n\n{email.clean_body()}"
        msg = Message(
            author=self.user,
            content=content,
            attachments=[
                DiscordAttachment(filename=a.filename, content=a.content)
                for a in email.attachments
            ],
            tags={"email_message_id": email.message_id, "email_sender": email.sender},
        )
        subject = email.thread_subject
        post = self.forum.find_post_by_title(subject)
        if post is None:
            return self.forum.create_post(subject, msg)
        post.add(msg)
        return post
