"""The PETSc chatbot: /reply with send / discard / revise vetting.

Implements the paper's two usage modes:

1. **Vetted replies** — a developer invokes ``/reply`` on a forum post
   mirrored from the mailing list.  The bot builds a conversation
   context from the post (title, messages, attachments), runs the
   augmented LLM workflow, and adds the draft answer to the post with
   three buttons.  *send* mails the answer to petsc-users with the
   clicking developer's signature and stamps the Discord message;
   *discard* deletes the draft; *revise* takes developer guidance and
   produces a new draft with fresh buttons.  No LLM text reaches users
   without a developer's click.
2. **Direct messages** — any user can chat with the bot privately
   (``dm``), with the explicit caveat that those answers are unvetted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.discordsim.app import App
from repro.discordsim.channels import ForumPost
from repro.discordsim.gateway import Gateway
from repro.discordsim.models import Button, ButtonStyle, Message, User
from repro.discordsim.server import Permission, Server
from repro.errors import BotError
from repro.history import InteractionStore
from repro.observability.metrics import get_registry
from repro.mail.mailinglist import MailingList
from repro.mail.message import EmailMessage
from repro.pipeline.rag import PipelineResult, RAGPipeline
from repro.prompts import REVISE_PROMPT
from repro.service import ReproService

if TYPE_CHECKING:
    from repro.engine import QueryEngine


@dataclass
class DraftState:
    """Tracks one draft answer through the vetting workflow."""

    post: ForumPost
    question: str
    result: PipelineResult
    message: Message
    decided: str = ""  # "", "sent", "discarded", "revised"
    revision_of: int | None = None


@dataclass
class DirectConversation:
    user: User
    turns: list[tuple[str, str]] = field(default_factory=list)  # (role, text)


class PetscChatbot(App):
    """LLM-backed support bot under developer control."""

    def __init__(
        self,
        server: Server,
        gateway: Gateway,
        *,
        pipeline: RAGPipeline,
        mailing_list: MailingList,
        bot_email: str = "petscbot@gmail.com",
        store: InteractionStore | None = None,
        engine: "QueryEngine | None" = None,
        service: ReproService | None = None,
    ) -> None:
        super().__init__(name="petsc-chatbot", server=server, gateway=gateway)
        self.pipeline = pipeline
        #: The request front door every question goes through.  Built
        #: from ``engine`` (shared caches, admission) when one is given,
        #: else an engine-less service over the bare pipeline — one code
        #: path either way.
        if service is None:
            service = (
                engine.service
                if engine is not None
                else ReproService.for_pipeline(pipeline)
            )
        self.service = service
        self.engine = engine if engine is not None else service.engine
        self.mailing_list = mailing_list
        self.bot_email = bot_email
        self.store = store if store is not None else InteractionStore()
        self.drafts: dict[int, DraftState] = {}
        self.sent_emails: list[EmailMessage] = []
        self._dms: dict[int, DirectConversation] = {}
        self.command("reply", "Draft an LLM answer for a petsc-users post", self._cmd_reply)

    def _answer(self, question: str) -> PipelineResult:
        return self.service.answer(question, mode=self.pipeline.mode)

    # ------------------------------------------------------------ /reply flow
    def _require_developer(self, user: User) -> None:
        if not (self.server.role_of(user).permissions & Permission.MANAGE):
            raise BotError(f"{user.name} is not a PETSc developer; /reply is developer-only")

    def build_context(self, post: ForumPost) -> str:
        """Conversation context: title, messages, and attachment names."""
        lines = [f"Subject: {post.title}", ""]
        for msg in post.history():
            lines.append(msg.content)
            for att in msg.attachments:
                lines.append(f"[attachment: {att.filename}, {len(att.content)} bytes]")
            lines.append("")
        return "\n".join(lines).strip()

    def _cmd_reply(self, invoker: User, *, post: ForumPost) -> DraftState:
        self._require_developer(invoker)
        question = self.build_context(post)
        result = self._answer(question)
        return self._add_draft(post, question, result)

    def _add_draft(
        self,
        post: ForumPost,
        question: str,
        result: PipelineResult,
        *,
        revision_of: int | None = None,
    ) -> DraftState:
        message = Message(
            author=self.user,
            content=result.answer,
            buttons=[
                Button(label="send", style=ButtonStyle.SUCCESS, callback=self._on_send),
                Button(label="discard", style=ButtonStyle.DANGER, callback=self._on_discard),
                Button(label="revise", style=ButtonStyle.PRIMARY, callback=self._on_revise),
            ],
        )
        post.add(message)
        state = DraftState(
            post=post, question=question, result=result, message=message,
            revision_of=revision_of,
        )
        self.drafts[message.message_id] = state
        self.store.record_pipeline_result(result, tags=[f"post:{post.post_id}"])
        get_registry().counter("repro.bots.drafts").inc()
        return state

    def _state_of(self, message: Message) -> DraftState:
        state = self.drafts.get(message.message_id)
        if state is None:
            raise BotError(f"message {message.message_id} is not a chatbot draft")
        if state.decided:
            raise BotError(f"draft already {state.decided}")
        return state

    # ------------------------------------------------------------ buttons
    def _on_send(self, message: Message, user: User) -> None:
        self._require_developer(user)
        state = self._state_of(message)
        email = EmailMessage(
            sender=self.bot_email,
            subject=f"Re: {state.post.title}",
            body=f"{state.result.answer}\n\n-- \nAnswer reviewed and sent by {user.name} (PETSc)",
        )
        self.mailing_list.post(email)
        self.sent_emails.append(email)
        state.decided = "sent"
        get_registry().counter("repro.bots.sent").inc()
        message.tags["sent-by"] = user.name
        message.tags["sent-at"] = f"{time.time():.0f}"
        message.disable_buttons()

    def _on_discard(self, message: Message, user: User) -> None:
        self._require_developer(user)
        state = self._state_of(message)
        state.decided = "discarded"
        get_registry().counter("repro.bots.discarded").inc()
        message.deleted = True
        message.disable_buttons()

    def _on_revise(self, message: Message, user: User) -> None:
        """Mark the draft as awaiting guidance; the developer then calls
        :meth:`submit_revision` with the guidance text."""
        self._require_developer(user)
        state = self._state_of(message)
        state.decided = "revised"
        message.disable_buttons()

    def submit_revision(self, message: Message, user: User, guidance: str) -> DraftState:
        """Produce a new draft guided by developer feedback."""
        self._require_developer(user)
        state = self.drafts.get(message.message_id)
        if state is None or state.decided != "revised":
            raise BotError("revision requires clicking the revise button first")
        if not guidance.strip():
            raise BotError("revision guidance must be non-empty")
        prompt = REVISE_PROMPT.format(guidance=guidance, question=state.question)
        # Re-run through the pipeline with the guidance folded in; the
        # retrieval sees the combined text, matching llmcord's behavior of
        # extending the conversation.
        get_registry().counter("repro.bots.revisions").inc()
        result = self._answer(f"{state.question}\n\n{guidance}")
        result.prompt = prompt
        return self._add_draft(state.post, state.question, result, revision_of=message.message_id)

    # ------------------------------------------------------------ direct messages
    def direct_message(self, user: User, text: str) -> str:
        """Private chat: unvetted answers, with a standing caveat."""
        conv = self._dms.setdefault(user.user_id, DirectConversation(user=user))
        get_registry().counter("repro.bots.dms").inc()
        conv.turns.append(("user", text))
        result = self._answer(text)
        self.store.record_pipeline_result(result, tags=[f"dm:{user.name}", "unvetted"])
        reply = (
            f"{result.answer}\n\n"
            "*Note: this is an automated answer that has not been reviewed by a "
            "PETSc developer.*"
        )
        conv.turns.append(("assistant", reply))
        return reply

    def dm_history(self, user: User) -> list[tuple[str, str]]:
        conv = self._dms.get(user.user_id)
        return list(conv.turns) if conv else []
