"""Wiring of the complete Fig. 5 support topology.

``build_support_system`` assembles: the petsc-users mailing list, the
bot Gmail account subscribed to it, the Apps-Script poller, the Discord
server with its private channels, the webhook, the email bot, and the
chatbot backed by an augmented RAG pipeline.  The returned
:class:`SupportSystem` exposes the pieces plus high-level drivers for
the typical event sequence (arcs 1–8 in the paper's figure).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bots.chatbot import DraftState, PetscChatbot
from repro.bots.email_bot import EmailBot
from repro.config import WorkflowConfig
from repro.corpus.builder import CorpusBundle, build_default_corpus
from repro.discordsim.channels import ForumPost
from repro.discordsim.gateway import Gateway
from repro.discordsim.models import User
from repro.discordsim.server import DEVELOPER_ROLE, Server
from repro.discordsim.webhook import Webhook
from repro.history import InteractionStore
from repro.mail.appsscript import AppsScriptPoller
from repro.mail.gmail import GmailAccount
from repro.mail.mailinglist import MailingList
from repro.mail.message import EmailMessage
from repro.pipeline.types import PipelineMode
from repro.resilience import FaultInjector, RetryPolicy


@dataclass
class SupportSystem:
    """All the moving parts of the paper's Fig. 5, assembled."""

    bundle: CorpusBundle
    mailing_list: MailingList
    account: GmailAccount
    poller: AppsScriptPoller
    server: Server
    gateway: Gateway
    webhook: Webhook
    email_bot: EmailBot
    chatbot: PetscChatbot
    store: InteractionStore
    #: The chaos source wired through the hops, when this is a chaos build.
    fault_injector: FaultInjector | None = None

    # ------------------------------------------------------------ drivers
    def user_sends_email(self, sender: str, subject: str, body: str) -> EmailMessage:
        """Arc 1: a user mails petsc-users."""
        email = EmailMessage(sender=sender, subject=subject, body=body)
        self.mailing_list.post(email)
        return email

    def poll(self) -> bool:
        """Arcs 2–4: poller notices unread mail → webhook → email bot."""
        return self.poller.tick()

    def developer_replies(self, developer: User, post: ForumPost) -> DraftState:
        """Arc 5: a developer invokes /reply on a mirrored post."""
        return self.chatbot.invoke("reply", developer, post=post)

    def find_post(self, subject: str) -> ForumPost | None:
        return self.server.forum_channel("petsc-users-emails").find_post_by_title(subject)


def build_support_system(
    bundle: CorpusBundle | None = None,
    config: WorkflowConfig | None = None,
    *,
    developers: tuple[str, ...] = ("barry", "junchao", "hong"),
    mode: str = "rag+rerank",
    fault_injector: FaultInjector | None = None,
) -> SupportSystem:
    """Assemble the full support topology over the (default) corpus.

    With a ``fault_injector``, every unreliable hop — mail delivery,
    webhook post, retriever, reranker, LLM — is chaos-wrapped, and the
    resilience layer keeps the chain up: delivery faults retry under the
    policy, webhook faults land in the poller's dead-letter queue, and
    pipeline faults walk the degradation ladder.
    """
    bundle = bundle or build_default_corpus()
    config = config or WorkflowConfig()

    bot_email = "petscbot@gmail.com"
    mailing_list = MailingList("petsc-users", public_archive=True)
    account = GmailAccount(bot_email, ignore_senders={bot_email})
    deliver = account.deliver
    if fault_injector is not None:
        chaos_deliver = fault_injector.wrap_callable("mail", account.deliver)
        if config.resilience.enabled:
            policy = RetryPolicy.from_config(config.resilience)

            def deliver(message: EmailMessage) -> None:
                policy.execute(
                    lambda: chaos_deliver(message), key=("mail", message.message_id)
                )

        else:
            deliver = chaos_deliver
    mailing_list.subscribe(account.address, deliver)

    gateway = Gateway()
    server = Server(name="PETSc")
    for dev in developers:
        server.add_member(User(name=dev), DEVELOPER_ROLE)
    notif = server.create_text_channel("petsc-users-notification", private=True)
    server.create_forum_channel("petsc-users-emails", private=True)

    webhook = Webhook(channel=notif, name="petsc-users-hook", gateway=gateway)
    webhook_post = webhook.execute
    if fault_injector is not None:
        # Failed posts land in the poller's dead-letter queue and are
        # redelivered on the next tick, so no wrapper retry here.
        webhook_post = fault_injector.wrap_callable("webhook", webhook.execute)
    poller = AppsScriptPoller(account=account, webhook_post=webhook_post)

    email_bot = EmailBot(server, gateway, account=account)
    store = InteractionStore()
    # Non-baseline bots serve through the shared index artifact; chaos
    # builds keep determinism because a fault injector disables the
    # engine's answer cache.  Engine/pipeline plumbing lives behind the
    # repro.api facade (which also picks sharded serving when configured);
    # either way the chatbot gets one ReproService front door.
    from repro.api import open_engine, open_pipeline
    from repro.service import ReproService

    if PipelineMode.coerce(mode) is PipelineMode.BASELINE:
        engine = None
        pipeline = open_pipeline(
            config, bundle=bundle, mode=mode, fault_injector=fault_injector
        )
        service = ReproService.for_pipeline(pipeline)
    else:
        engine = open_engine(config, bundle=bundle, fault_injector=fault_injector)
        pipeline = engine.pipeline(mode)
        service = engine.service
    chatbot = PetscChatbot(
        server, gateway, pipeline=pipeline, mailing_list=mailing_list,
        bot_email=bot_email, store=store, engine=engine, service=service,
    )

    return SupportSystem(
        bundle=bundle,
        mailing_list=mailing_list,
        account=account,
        poller=poller,
        server=server,
        gateway=gateway,
        webhook=webhook,
        email_bot=email_bot,
        chatbot=chatbot,
        store=store,
        fault_injector=fault_injector,
    )
