"""The PETSc Discord bots (paper Section IV, Fig. 5).

:class:`EmailBot` bridges the mailing list into a private forum channel;
:class:`PetscChatbot` answers forum posts via the augmented LLM workflow
under developer control (send / discard / revise buttons) and supports
private direct messages.  :func:`build_support_system` wires the whole
Fig. 5 topology together.
"""

from repro.bots.email_bot import EmailBot
from repro.bots.chatbot import PetscChatbot
from repro.bots.system import SupportSystem, build_support_system

__all__ = [
    "EmailBot",
    "PetscChatbot",
    "SupportSystem",
    "build_support_system",
]
