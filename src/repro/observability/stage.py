"""The unified stage API: one instrumentation surface for every hop.

Every hop of the stack — pipeline stages, individual retrievers, the
reranker, LLM attempts, poller ticks, webhook posts — goes through
:func:`stage`, which in one shot:

* opens a span named ``name`` on the tracer (when one is active),
* counts the call on ``<metric>.requests``,
* counts a raised exception on ``<metric>.failures``, and
* records the wall-clock duration into ``<metric>.duration_ms``.

Instrumenting a new hop is therefore one ``with stage(...)`` line, which
is what makes wiring twelve hops tractable: the span tree, the metric
names, and the failure accounting all come from the same place.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.observability.metrics import MetricsRegistry, get_registry
from repro.observability.trace import Span, Tracer


@contextmanager
def stage(
    name: str,
    *,
    metric: str,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    **attributes: object,
) -> Iterator[Span | None]:
    """Instrument one hop; yields the open span (None without a tracer).

    ``metric`` is the instrument prefix, e.g. ``repro.pipeline.locate``
    registers ``.requests`` / ``.failures`` counters and a
    ``.duration_ms`` histogram under it.
    """
    reg = registry if registry is not None else get_registry()
    reg.counter(f"{metric}.requests").inc()
    start = time.perf_counter()
    try:
        if tracer is not None and tracer.active:
            with tracer.span(name, **attributes) as span:
                yield span
        else:
            yield None
    except BaseException:
        reg.counter(f"{metric}.failures").inc()
        raise
    finally:
        reg.histogram(f"{metric}.duration_ms").observe(
            1000.0 * (time.perf_counter() - start)
        )
