"""Observability: structured tracing + a deterministic metrics registry.

The measurement substrate under the pipeline stack:

* :class:`Tracer` / :class:`Trace` / :class:`Span` — every pipeline
  invocation produces a span tree (``pipeline`` → ``locate`` →
  vector/keyword children, ``refine``, ``llm`` → per-attempt children)
  carried on ``PipelineResult.trace`` and persisted in the interaction
  history.  Resilience occurrences are span *events*, not log strings.
* :class:`MetricsRegistry` — process-wide counters, gauges, and
  fixed-bucket histograms named ``repro.<subsystem>.<name>``, with a
  deterministic digest: same seed ⇒ byte-identical.
* :func:`stage` — the one instrumentation call every hop shares.
"""

from repro.observability.metrics import (
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.observability.stage import stage
from repro.observability.trace import Span, SpanEvent, TickClock, Trace, Tracer

__all__ = [
    "Counter",
    "DEFAULT_MS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanEvent",
    "TickClock",
    "Trace",
    "Tracer",
    "get_registry",
    "set_registry",
    "stage",
    "use_registry",
]
