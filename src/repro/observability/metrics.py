"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Naming convention: ``repro.<subsystem>.<name>`` (lowercase segments,
underscores), enforced at registration.  Instruments are get-or-create,
so any component can grab its counter without wiring a registry through
every constructor — the default registry is process-wide, and tests or
CLI commands scope themselves with :func:`use_registry`.

Determinism contract: counters, gauges, and histograms registered with
``deterministic=True`` hold values that are pure functions of the
workload and seed (call counts, token counts, attempt counts...).
Duration histograms are wall-clock and therefore *excluded* from
:meth:`MetricsRegistry.digest`, which is what lets two same-seed runs
produce byte-identical digests while still exporting real timings.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ObservabilityError

_NAME_RE = re.compile(r"^repro(\.[a-z0-9_]+){2,}$")

#: Default buckets for duration histograms, in milliseconds.
DEFAULT_MS_BUCKETS: tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0
)


def _check_name(name: str) -> None:
    if not _NAME_RE.match(name):
        raise ObservabilityError(
            f"metric name {name!r} violates the repro.<subsystem>.<name> convention"
        )


#: One process-wide lock for instrument writes.  Increments are commutative,
#: so serializing them is enough for batch workers to share instruments
#: without losing updates; contention is negligible at our write rates.
_write_lock = threading.Lock()


class Counter:
    """A monotonically increasing integer.  Thread-safe."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ObservabilityError(f"counter {self.name} cannot decrease (inc {n})")
        with _write_lock:
            self.value += n


class Gauge:
    """A value that goes up and down (queue depth, breaker state)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        with _write_lock:
            self.value = float(value)

    def inc(self, delta: float = 1.0) -> None:
        with _write_lock:
            self.value += delta


class Histogram:
    """Fixed-bucket histogram (upper bounds, plus an overflow bucket)."""

    __slots__ = ("name", "buckets", "counts", "count", "total", "deterministic")

    def __init__(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_MS_BUCKETS,
        *,
        deterministic: bool = False,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ObservabilityError(f"histogram {name}: buckets must be ascending, non-empty")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(buckets) + 1)  # last = overflow
        self.count = 0
        self.total = 0.0
        self.deterministic = deterministic

    def observe(self, value: float) -> None:
        with _write_lock:
            self.counts[bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.total += value

    def snapshot(self) -> dict:
        full = {
            "count": self.count,
            "sum": round(self.total, 9),
            "buckets": {
                (f"le_{b:g}" if i < len(self.buckets) else "inf"): c
                for i, (b, c) in enumerate(
                    zip(self.buckets + (float("inf"),), self.counts)
                )
            },
        }
        return full


class MetricsRegistry:
    """Get-or-create instrument registry with deterministic digests."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------ registration
    def _guard(self, name: str, kind: dict) -> None:
        _check_name(name)
        for other in (self._counters, self._gauges, self._histograms):
            if other is not kind and name in other:
                raise ObservabilityError(f"metric {name!r} already registered as another type")

    def counter(self, name: str) -> Counter:
        with self._lock:
            self._guard(name, self._counters)
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            self._guard(name, self._gauges)
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_MS_BUCKETS,
        *,
        deterministic: bool = False,
    ) -> Histogram:
        with self._lock:
            self._guard(name, self._histograms)
            if name not in self._histograms:
                self._histograms[name] = Histogram(
                    name, buckets, deterministic=deterministic
                )
            return self._histograms[name]

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------ export
    def snapshot(self) -> dict:
        """Full export, wall-clock values included."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {**h.snapshot(), "deterministic": h.deterministic}
                for n, h in sorted(self._histograms.items())
            },
        }

    def deterministic_view(self) -> dict:
        """The seed-stable slice: full counters/gauges/deterministic
        histograms; duration histograms reduced to their sample count."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: (h.snapshot() if h.deterministic else {"count": h.count})
                for n, h in sorted(self._histograms.items())
            },
        }

    def digest(self) -> str:
        """SHA-256 over the deterministic view — byte-identical for two
        same-seed runs of the same workload."""
        payload = json.dumps(self.deterministic_view(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def render_text(self) -> str:
        """Human-readable dump, one instrument per line."""
        lines: list[str] = []
        for name, c in sorted(self._counters.items()):
            lines.append(f"{name:<44} counter    {c.value}")
        for name, g in sorted(self._gauges.items()):
            lines.append(f"{name:<44} gauge      {g.value:g}")
        for name, h in sorted(self._histograms.items()):
            mean = h.total / h.count if h.count else 0.0
            lines.append(
                f"{name:<44} histogram  count={h.count} mean={mean:.3f}"
                f"{' (deterministic)' if h.deterministic else ''}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"


_default_registry = MetricsRegistry()
_local = threading.local()


def get_registry() -> MetricsRegistry:
    """The active registry: the innermost :func:`use_registry` scope, or
    the process-wide default."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else _default_registry


def set_registry(registry: MetricsRegistry) -> None:
    """Replace the process-wide default registry."""
    global _default_registry
    _default_registry = registry


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope all implicit metric lookups to ``registry`` (re-entrant)."""
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    stack.append(registry)
    try:
        yield registry
    finally:
        stack.pop()
