"""Structured tracing: a span tree per pipeline invocation.

Each :class:`Span` covers one hop of the stack (``locate``, ``vector``,
``refine``, ``llm``, ``attempt``); resilience occurrences — degradation
rungs, retries, breaker transitions, injected faults — are recorded as
:class:`SpanEvent`\\ s on the span where they happened instead of opaque
strings.  The clock is injectable, so tests can drive time explicitly,
and :meth:`Trace.structure_digest` hashes only the *shape* of the tree
(names, events, statuses — never durations), which is what makes
same-seed runs byte-comparable while wall-clock timings stay real.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import ObservabilityError


@dataclass
class SpanEvent:
    """A point-in-time occurrence on a span (retry, degradation, error)."""

    name: str
    at: float
    attributes: dict[str, object] = field(default_factory=dict)


@dataclass
class Span:
    """One timed operation; children are sub-operations run inside it."""

    name: str
    start: float
    end: float | None = None
    status: str = "ok"  # "ok" | "error"
    attributes: dict[str, object] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Elapsed seconds; 0.0 while the span is still open."""
        return 0.0 if self.end is None else self.end - self.start

    def add_event(self, name: str, *, at: float, **attributes: object) -> SpanEvent:
        event = SpanEvent(name=name, at=at, attributes=dict(attributes))
        self.events.append(event)
        return event

    def event_names(self) -> list[str]:
        return [e.name for e in self.events]

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (including self) with ``name``, preorder."""
        out = [self] if self.name == name else []
        for child in self.children:
            out.extend(child.find(name))
        return out

    # ------------------------------------------------------------ serialization
    def to_dict(self, *, origin: float) -> dict:
        """JSON-friendly form with times relative to ``origin`` seconds."""
        return {
            "name": self.name,
            "start": round(self.start - origin, 6),
            "end": None if self.end is None else round(self.end - origin, 6),
            "status": self.status,
            "attributes": dict(self.attributes),
            "events": [
                {"name": e.name, "at": round(e.at - origin, 6), "attributes": dict(e.attributes)}
                for e in self.events
            ],
            "children": [c.to_dict(origin=origin) for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=data["name"],
            start=float(data["start"]),
            end=None if data.get("end") is None else float(data["end"]),
            status=data.get("status", "ok"),
            attributes=dict(data.get("attributes", {})),
            events=[
                SpanEvent(
                    name=e["name"], at=float(e["at"]), attributes=dict(e.get("attributes", {}))
                )
                for e in data.get("events", [])
            ],
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )


class Trace:
    """The span tree of one pipeline invocation, rooted at ``pipeline``."""

    def __init__(self, root: Span) -> None:
        self.root = root

    # ------------------------------------------------------------ queries
    def spans(self) -> Iterator[Span]:
        """All spans, preorder."""
        stack = [self.root]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, name: str) -> list[Span]:
        return self.root.find(name)

    def stage_seconds(self, name: str) -> float:
        """Total duration of every span named ``name`` in the tree."""
        return sum(s.duration for s in self.find(name))

    def span_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for span in self.spans():
            counts[span.name] = counts.get(span.name, 0) + 1
        return counts

    def event_names(self) -> list[str]:
        """Every event name in the tree, preorder."""
        return [e.name for span in self.spans() for e in span.events]

    # ------------------------------------------------------------ determinism
    def _structure(self, span: Span) -> list:
        return [
            span.name,
            span.status,
            [e.name for e in span.events],
            [self._structure(c) for c in span.children],
        ]

    def structure_digest(self) -> str:
        """SHA-256 over the tree *shape* — names, statuses, event names,
        child order — with all timing excluded, so same-seed runs match."""
        payload = json.dumps(self._structure(self.root), separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    # ------------------------------------------------------------ well-formedness
    def validate(self) -> list[str]:
        """Structural violations (empty list = well-formed tree)."""
        problems: list[str] = []

        def check(span: Span) -> None:
            if span.end is None:
                problems.append(f"{span.name}: span never finished")
                return
            if span.end < span.start:
                problems.append(f"{span.name}: end {span.end} before start {span.start}")
            for e in span.events:
                if not span.start <= e.at <= span.end:
                    problems.append(f"{span.name}: event {e.name!r} outside span interval")
            prev: Span | None = None
            for child in span.children:
                if child.end is None:
                    problems.append(f"{child.name}: span never finished")
                    continue
                if child.start < span.start or child.end > span.end:
                    problems.append(f"{child.name}: child escapes parent {span.name}")
                if prev is not None and prev.end is not None and child.start < prev.end:
                    problems.append(
                        f"{child.name}: overlaps earlier sibling {prev.name} under {span.name}"
                    )
                prev = child
                check(child)

        check(self.root)
        return problems

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> dict:
        return {"root": self.root.to_dict(origin=self.root.start)}

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        return cls(root=Span.from_dict(data["root"]))

    # ------------------------------------------------------------ rendering
    def render(self) -> str:
        """ASCII span tree with millisecond durations and events."""
        lines: list[str] = []

        def attrs_of(span: Span) -> str:
            if not span.attributes:
                return ""
            inner = " ".join(f"{k}={v}" for k, v in span.attributes.items())
            return f"  [{inner}]"

        def walk(span: Span, prefix: str, branch: str, child_prefix: str) -> None:
            flag = "" if span.status == "ok" else " !error"
            lines.append(
                f"{prefix}{branch}{span.name}  {1000 * span.duration:.2f} ms"
                f"{flag}{attrs_of(span)}"
            )
            tail = list(span.events)
            for e in tail:
                marker = "•" if not e.name.startswith("error") else "✗"
                extra = (
                    " " + " ".join(f"{k}={v}" for k, v in e.attributes.items())
                    if e.attributes
                    else ""
                )
                lines.append(f"{child_prefix}{marker} {e.name}{extra}")
            for i, child in enumerate(span.children):
                last = i == len(span.children) - 1
                walk(
                    child,
                    child_prefix,
                    "└─ " if last else "├─ ",
                    child_prefix + ("   " if last else "│  "),
                )

        walk(self.root, "", "", "")
        return "\n".join(lines)


class TickClock:
    """A deterministic clock: every reading advances by ``step`` seconds."""

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self._now = start
        self.step = step

    def __call__(self) -> float:
        now = self._now
        self._now += self.step
        return now


class Tracer:
    """Builds one span tree per :meth:`trace` context.

    The clock defaults to ``time.perf_counter`` but is injectable, so the
    span tree's *structure* is testable without real time passing.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._stack: list[Span] = []

    @property
    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def active(self) -> bool:
        return bool(self._stack)

    def _close(self, span: Span, exc: BaseException | None) -> None:
        if exc is not None:
            span.status = "error"
            span.add_event(
                f"error:{type(exc).__name__}",
                at=self.clock(),
                message=str(exc)[:200],
            )
        span.end = self.clock()

    @contextmanager
    def trace(self, name: str = "pipeline", **attributes: object) -> Iterator[Trace]:
        """Open a new root span; yields the :class:`Trace` being built."""
        if self._stack:
            raise ObservabilityError(
                f"cannot start trace {name!r}: span {self._stack[-1].name!r} is active"
            )
        root = Span(name=name, start=self.clock(), attributes=dict(attributes))
        self._stack.append(root)
        try:
            yield Trace(root)
        except BaseException as exc:
            self._close(root, exc)
            raise
        else:
            self._close(root, None)
        finally:
            self._stack.pop()

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a child span under the current span."""
        if not self._stack:
            raise ObservabilityError(f"span {name!r} requires an active trace")
        span = Span(name=name, start=self.clock(), attributes=dict(attributes))
        self._stack[-1].children.append(span)
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            self._close(span, exc)
            raise
        else:
            self._close(span, None)
        finally:
            self._stack.pop()

    def event(self, name: str, **attributes: object) -> None:
        """Record an event on the current span (no-op outside a trace)."""
        if self._stack:
            self._stack[-1].add_event(name, at=self.clock(), **attributes)
