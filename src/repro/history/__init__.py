"""Interaction history (paper Section III-F).

A "detailed, manipulatable, searchable database of all interactions with
all the LLMs": question, response, timestamp, continuation and embedding
model, the generated prompts, and blind scores assigned by reviewers.
Developer answers can be stored and scored in the same database.
"""

from repro.history.records import Interaction, ScoreRecord
from repro.history.store import InteractionStore
from repro.history.scoring import BlindScoringSession

__all__ = [
    "Interaction",
    "ScoreRecord",
    "InteractionStore",
    "BlindScoringSession",
]
