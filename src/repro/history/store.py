"""The searchable interaction database.

The paper currently uses "a bespoke Python dictionary" — this store is
that dictionary grown into a real component: keyed records, full-text
search, model/mode filters, JSONL persistence, and hooks for feeding
past interactions back into RAG (``as_documents``).
"""

from __future__ import annotations

import itertools
import json
import time
from pathlib import Path

from repro.documents import Document
from repro.durability.atomic import atomic_write
from repro.durability.journal import Journal, RecoveryReport, recover_journal
from repro.errors import HistoryError
from repro.history.records import Interaction, ScoreRecord
from repro.observability.metrics import get_registry
from repro.pipeline.rag import PipelineResult
from repro.utils.textproc import tokenize


def _interaction_to_dict(rec: Interaction) -> dict:
    return {
        "interaction_id": rec.interaction_id,
        "question": rec.question,
        "answer": rec.answer,
        "timestamp": rec.timestamp,
        "chat_model": rec.chat_model,
        "embedding_model": rec.embedding_model,
        "mode": rec.mode,
        "prompt": rec.prompt,
        "context_sources": rec.context_sources,
        "rag_seconds": rec.rag_seconds,
        "llm_seconds": rec.llm_seconds,
        "attempts": rec.attempts,
        "degraded": rec.degraded,
        "trace": rec.trace,
        "answered_by_human": rec.answered_by_human,
        "tags": rec.tags,
        "scores": [
            {
                "scorer": s.scorer,
                "score": s.score,
                "correct_spans": s.correct_spans,
                "incorrect_spans": s.incorrect_spans,
                "comment": s.comment,
            }
            for s in rec.scores
        ],
    }


def _interaction_from_dict(obj: dict) -> Interaction:
    obj = dict(obj)
    scores = [ScoreRecord(**s) for s in obj.pop("scores", [])]
    rec = Interaction(**obj)
    rec.scores = scores
    return rec


class InteractionStore:
    """In-memory interaction database with JSONL persistence.

    Durability comes in two strengths: :meth:`save` writes the whole
    store atomically (crash leaves the old file intact), and an attached
    write-ahead :class:`~repro.durability.journal.Journal` makes every
    :meth:`add` durable the moment it returns, recoverable after a torn
    write via :meth:`recover`.
    """

    def __init__(self) -> None:
        self._records: dict[str, Interaction] = {}
        self._counter = itertools.count(1)
        self._journal: Journal | None = None

    # ------------------------------------------------------------------ insert
    def new_id(self) -> str:
        return f"int-{next(self._counter):06d}"

    def add(self, interaction: Interaction) -> Interaction:
        if interaction.interaction_id in self._records:
            raise HistoryError(f"duplicate interaction id {interaction.interaction_id!r}")
        if self._journal is not None:
            # Journal first: if the append tears, the record was never
            # added, so memory and disk cannot disagree after recovery.
            self._journal.append(_interaction_to_dict(interaction))
        self._records[interaction.interaction_id] = interaction
        return interaction

    # ------------------------------------------------------------------ journal
    @property
    def journal(self) -> Journal | None:
        return self._journal

    def attach_journal(self, path: str | Path, *, fsync: bool = True) -> Journal:
        """Every subsequent :meth:`add` appends to the journal at ``path``."""
        if self._journal is not None:
            raise HistoryError("a journal is already attached")
        self._journal = Journal(path, fsync=fsync)
        return self._journal

    def detach_journal(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    @classmethod
    def recover(
        cls, path: str | Path, *, truncate: bool = True
    ) -> "tuple[InteractionStore, RecoveryReport]":
        """Rebuild a store from its journal, dropping any torn tail.

        Returns the recovered store and the
        :class:`~repro.durability.journal.RecoveryReport` saying exactly
        how many records survived and how many bytes were dropped.
        """
        report = recover_journal(path, truncate=truncate)
        store = cls()
        max_seq = 0
        for obj in report.records:
            rec = _interaction_from_dict(obj)
            store.add(rec)
            try:
                max_seq = max(max_seq, int(rec.interaction_id.split("-")[-1]))
            except ValueError:
                pass
        store._counter = itertools.count(max_seq + 1)
        get_registry().counter("repro.history.recovered").inc(report.intact_count)
        return store, report

    def record_pipeline_result(
        self,
        result: PipelineResult,
        *,
        embedding_model: str = "",
        timestamp: float | None = None,
        tags: list[str] | None = None,
        include_trace: bool = True,
    ) -> Interaction:
        """Store one pipeline invocation."""
        interaction = Interaction(
            interaction_id=self.new_id(),
            question=result.question,
            answer=result.answer,
            timestamp=time.time() if timestamp is None else timestamp,
            chat_model=result.model,
            embedding_model=embedding_model,
            mode=str(result.mode),
            prompt=result.prompt,
            context_sources=[
                str(c.document.metadata.get("source", "")) for c in result.contexts
            ],
            rag_seconds=result.rag_seconds,
            llm_seconds=result.llm_seconds,
            attempts=result.attempts,
            degraded=[str(e) for e in result.degraded],
            trace=result.trace.to_dict() if include_trace and result.trace else None,
            tags=tags or [],
        )
        get_registry().counter("repro.history.recorded").inc()
        return self.add(interaction)

    def record_human_answer(
        self,
        question: str,
        answer: str,
        *,
        developer: str,
        timestamp: float | None = None,
    ) -> Interaction:
        """Store a developer-written answer (scored like LLM answers)."""
        interaction = Interaction(
            interaction_id=self.new_id(),
            question=question,
            answer=answer,
            timestamp=time.time() if timestamp is None else timestamp,
            answered_by_human=True,
            tags=[f"developer:{developer}"],
        )
        return self.add(interaction)

    # ------------------------------------------------------------------ access
    def __len__(self) -> int:
        return len(self._records)

    def get(self, interaction_id: str) -> Interaction:
        try:
            return self._records[interaction_id]
        except KeyError:
            raise HistoryError(f"unknown interaction id {interaction_id!r}") from None

    def all(self) -> list[Interaction]:
        return sorted(self._records.values(), key=lambda r: r.timestamp)

    def search(
        self,
        text: str = "",
        *,
        chat_model: str | None = None,
        mode: str | None = None,
        min_mean_score: float | None = None,
        human_only: bool = False,
        degraded_only: bool = False,
    ) -> list[Interaction]:
        """Filter interactions; ``text`` matches question or answer tokens.

        ``degraded_only`` keeps answers produced under degradation or
        retries — the slice blind scoring compares against clean runs.
        """
        needle = set(tokenize(text)) if text else set()
        out: list[Interaction] = []
        for rec in self.all():
            if chat_model is not None and rec.chat_model != chat_model:
                continue
            if mode is not None and rec.mode != mode:
                continue
            if human_only and not rec.answered_by_human:
                continue
            if degraded_only and not (rec.degraded or rec.attempts > 1):
                continue
            if min_mean_score is not None:
                mean = rec.mean_score()
                if mean is None or mean < min_mean_score:
                    continue
            if needle:
                haystack = set(tokenize(rec.question)) | set(tokenize(rec.answer))
                if not needle <= haystack:
                    continue
            out.append(rec)
        return out

    # ------------------------------------------------------------------ scoring
    def add_score(self, interaction_id: str, record: ScoreRecord) -> None:
        self.get(interaction_id).add_score(record)

    # ------------------------------------------------------------------ RAG feedback
    def as_documents(self, *, min_mean_score: float = 3.0) -> list[Document]:
        """High-scoring past interactions as RAG documents.

        This is the paper's dotted arrow from "Shared histories" back into
        box 1: vetted Q/A pairs become retrievable knowledge.
        """
        docs: list[Document] = []
        for rec in self.all():
            mean = rec.mean_score()
            if mean is None or mean < min_mean_score:
                continue
            docs.append(Document(
                text=f"Q: {rec.question}\n\nA: {rec.answer}",
                metadata={
                    "source": f"history/{rec.interaction_id}",
                    "doc_type": "history",
                    "title": rec.question[:80],
                    "mean_score": mean,
                },
            ))
        return docs

    # ------------------------------------------------------------------ persistence
    def save(self, path: str | Path, *, fsync: bool = True) -> None:
        """Write the full store as JSONL, atomically: a crash mid-save
        leaves the previous file byte-for-byte intact."""
        lines = [json.dumps(_interaction_to_dict(rec)) for rec in self.all()]
        atomic_write(path, "".join(line + "\n" for line in lines), fsync=fsync)

    @classmethod
    def load(cls, path: str | Path) -> "InteractionStore":
        store = cls()
        max_seq = 0
        for line_no, line in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), 1):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise HistoryError(f"{path}:{line_no}: invalid JSON: {exc}") from exc
            rec = _interaction_from_dict(obj)
            store.add(rec)
            try:
                max_seq = max(max_seq, int(rec.interaction_id.split("-")[-1]))
            except ValueError:
                pass
        store._counter = itertools.count(max_seq + 1)
        return store
