"""Blind-scoring workflow over the interaction database.

Reviewers see (question, answer) pairs *without* provenance — no model
name, no mode, no prompt — in a deterministic shuffled order, and assign
Table I rubric scores.  This mirrors the paper's "blind-score" process
and guards the comparison between pipelines (and between LLMs and human
developers) against reviewer bias.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HistoryError
from repro.history.records import ScoreRecord
from repro.history.store import InteractionStore
from repro.utils.rng import rng_for


@dataclass
class BlindItem:
    """What a scorer is allowed to see."""

    item_id: str
    question: str
    answer: str


class BlindScoringSession:
    """One reviewer's pass over unscored interactions."""

    def __init__(self, store: InteractionStore, *, scorer: str) -> None:
        if not scorer:
            raise HistoryError("scorer name must be non-empty")
        self.store = store
        self.scorer = scorer

    def pending_items(self) -> list[BlindItem]:
        """Interactions this scorer has not scored yet, in blinded order.

        The order is a deterministic permutation seeded by the scorer
        name, so two scorers see different orders (reducing sequence
        effects) but each scorer's session is reproducible.
        """
        items = [
            BlindItem(item_id=rec.interaction_id, question=rec.question, answer=rec.answer)
            for rec in self.store.all()
            if not any(s.scorer == self.scorer for s in rec.scores)
        ]
        rng = rng_for("blind-order", self.scorer)
        order = rng.permutation(len(items))
        return [items[i] for i in order]

    def submit(
        self,
        item_id: str,
        score: int,
        *,
        correct_spans: list[str] | None = None,
        incorrect_spans: list[str] | None = None,
        comment: str = "",
    ) -> None:
        """Record a score; spans must actually occur in the answer."""
        rec = self.store.get(item_id)
        for span in (correct_spans or []) + (incorrect_spans or []):
            if span not in rec.answer:
                raise HistoryError(
                    f"span {span[:40]!r} does not occur in the answer of {item_id}"
                )
        rec.add_score(ScoreRecord(
            scorer=self.scorer,
            score=score,
            correct_spans=correct_spans or [],
            incorrect_spans=incorrect_spans or [],
            comment=comment,
        ))
