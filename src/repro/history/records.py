"""Record types for the interaction-history database."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HistoryError


@dataclass
class ScoreRecord:
    """One blind score assigned by a reviewer.

    ``correct_spans`` / ``incorrect_spans`` let scorers "indicate correct
    and incorrect portions of the responses" (paper III-F) as substrings
    of the answer text.
    """

    scorer: str
    score: int
    correct_spans: list[str] = field(default_factory=list)
    incorrect_spans: list[str] = field(default_factory=list)
    comment: str = ""

    def __post_init__(self) -> None:
        if not 0 <= self.score <= 4:
            raise HistoryError(f"score must be in 0..4, got {self.score}")
        if not self.scorer:
            raise HistoryError("scorer name must be non-empty")


@dataclass
class Interaction:
    """One question/answer exchange with an LLM (or a human developer)."""

    interaction_id: str
    question: str
    answer: str
    timestamp: float
    chat_model: str = ""
    embedding_model: str = ""
    mode: str = ""
    prompt: str = ""
    context_sources: list[str] = field(default_factory=list)
    rag_seconds: float = 0.0
    llm_seconds: float = 0.0
    #: LLM tries the answer consumed (1 = first try; >1 = retried).
    attempts: int = 1
    #: Degradation-ladder events active when the answer was produced
    #: (e.g. ``"rerank:truncate"``); lets blind scoring correlate answer
    #: quality with degradation.
    degraded: list[str] = field(default_factory=list)
    #: Serialized span tree (``Trace.to_dict``) for the producing pipeline
    #: invocation, or ``None`` when tracing was off or the record predates
    #: the observability layer.
    trace: dict | None = None
    answered_by_human: bool = False
    scores: list[ScoreRecord] = field(default_factory=list)
    tags: list[str] = field(default_factory=list)

    def mean_score(self) -> float | None:
        if not self.scores:
            return None
        return sum(s.score for s in self.scores) / len(self.scores)

    def add_score(self, record: ScoreRecord) -> None:
        if any(s.scorer == record.scorer for s in self.scores):
            raise HistoryError(
                f"scorer {record.scorer!r} already scored interaction {self.interaction_id}"
            )
        self.scores.append(record)
