#!/usr/bin/env python
"""The paper's Section III-A pipeline, step by step, with persistence.

Writes the synthetic PETSc docs to a Markdown tree on disk, loads them
back with the DirectoryLoader (the LangChain-equivalent flow), splits
them, embeds them into a vector database, persists the database, reloads
it, and runs retrieval queries against it — including the PETSc-specific
keyword augmentation.

Run:  python examples/build_rag_database.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.corpus import CorpusBuilder, build_default_corpus
from repro.corpus.builder import chunk_corpus, tag_chunks_with_facts
from repro.documents import DirectoryLoader, MarkdownHeaderTextSplitter, RecursiveCharacterTextSplitter
from repro.embeddings import create_embedding_model
from repro.retrieval import ManualPageKeywordSearch
from repro.vectorstore import VectorStore


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="petsc-rag-"))
    bundle = build_default_corpus()

    print(f"1. writing the PETSc docs tree to {workdir} ...")
    CorpusBuilder().write_tree(workdir / "docs", bundle)
    n_files = sum(1 for _ in (workdir / "docs").rglob("*.md"))
    print(f"   {n_files} Markdown files")

    print("2. loading with DirectoryLoader ...")
    docs = DirectoryLoader(workdir / "docs").load()
    print(f"   {len(docs)} documents loaded")

    print("3. splitting (header splitter + recursive character splitter) ...")
    header = MarkdownHeaderTextSplitter(max_depth=2)
    chars = RecursiveCharacterTextSplitter(chunk_size=800, chunk_overlap=120)
    chunks = tag_chunks_with_facts(
        chars.split_documents(header.split_documents(docs)), bundle.registry
    )
    print(f"   {len(chunks)} chunks")

    print("4. embedding into the vector database ...")
    emb = create_embedding_model("petsc-embed-large", corpus_texts=[c.text for c in chunks])
    store = VectorStore.from_documents(chunks, emb)
    print(f"   {len(store)} vectors of dimension {emb.dim}")

    print("5. persisting and reloading ...")
    store.save(workdir / "db")
    reloaded = VectorStore.load(workdir / "db", emb)
    print(f"   reloaded {len(reloaded)} vectors")

    print("6. querying ...")
    for query in (
        "Can KSP solve a rectangular least squares problem?",
        "How do I see whether preallocation was sufficient during assembly?",
    ):
        hits = reloaded.similarity_search_with_score(query, k=3)
        print(f"\n   Q: {query}")
        for doc, score in hits:
            print(f"      {score:.3f}  {doc.metadata.get('source')}")

    print("\n7. PETSc-specific keyword augmentation (Section III-C) ...")
    keyword = ManualPageKeywordSearch(bundle)
    hits = keyword.retrieve("What does KSPSolve do and how does -ksp_monitor help?", k=4)
    for h in hits:
        print(f"   exact-match page: {h.document.metadata['title']}")

    print("\n8. convenience path: chunk_corpus() does steps 1-3 in memory")
    direct = chunk_corpus(bundle)
    print(f"   {len(direct)} chunks (manual pages kept whole)")


if __name__ == "__main__":
    main()
