#!/usr/bin/env python
"""Quickstart: ask the PETSc assistant questions through the full workflow.

Builds the synthetic PETSc knowledge base, the reranking-enhanced RAG
pipeline, and the postprocessing stage, then asks a few questions —
including the paper's famous ``KSPBurb`` probe.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import WorkflowConfig, build_workflow

QUESTIONS = [
    "What does KSPBurb do?",
    "Can I use KSP to solve a system where the matrix is not square, only "
    "rectangular? Must it be invertible too or does that depend on how "
    "you're using KSP?",
    "How can I print the residual norm at every iteration?",
]


def main() -> None:
    print("building corpus + RAG database + reranker + simulated LLM ...")
    workflow = build_workflow(config=WorkflowConfig())  # rag+rerank by default

    for question in QUESTIONS:
        print("\n" + "=" * 78)
        print(f"Q: {question}")
        answer = workflow.ask(question)
        print("-" * 78)
        print(answer.answer)
        print("-" * 78)
        sources = [c.document.metadata.get("source") for c in answer.result.contexts]
        print(f"contexts: {sources}")
        print(f"RAG stage: {1000 * answer.result.rag_seconds:.1f} ms | "
              f"LLM: {1000 * answer.result.llm_seconds:.1f} ms")
        if answer.code_checks:
            ok = "all pass" if answer.all_code_ok else "FAILURES"
            print(f"code blocks checked: {len(answer.code_checks)} ({ok})")

    print("\n" + "=" * 78)
    print(f"interactions recorded in the shared history: {len(workflow.store)}")
    rec = workflow.store.all()[0]
    print(f"first record: model={rec.chat_model}, mode={rec.mode}, "
          f"embedding={rec.embedding_model}")


if __name__ == "__main__":
    main()
