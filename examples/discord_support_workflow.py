#!/usr/bin/env python
"""The paper's Fig. 5 workflow, end to end.

A user emails petsc-users; the Apps-Script poller notices unread mail
and fires the Discord webhook; the email bot mirrors the thread into the
private ``petsc-users-emails`` forum; a developer invokes ``/reply``;
the chatbot drafts an answer with send / discard / revise buttons; the
developer revises once and then sends — the reply goes back to the
mailing list with the developer's signature.

Run:  python examples/discord_support_workflow.py
"""

from __future__ import annotations

from repro import WorkflowConfig, build_support_system

USER_EMAIL = """\
Hi PETSc team,

Our pressure solve for incompressible flow stalls around a relative
accuracy of 1e-3 no matter how many iterations we allow. The operator is
singular - the constant vector is in its null space. What are we missing?

Thanks,
A struggling user

On Mon, Jun 1, 2026, someone wrote:
> (an old quoted conversation that should not be mirrored)
"""


def main() -> None:
    print("assembling the support system (Fig. 5 topology) ...")
    system = build_support_system(config=WorkflowConfig())
    barry = next(u for u in system.server.members.values() if u.name == "barry")

    print("\n[arc 1] user emails petsc-users")
    system.user_sends_email("user@university.edu", "Singular Poisson stalls", USER_EMAIL)
    print(f"        unread in {system.account.address}: {system.account.unread_count()}")

    print("[arc 2-3] Apps-Script poller fires the Discord webhook")
    assert system.poll()
    notif = system.server.text_channel("petsc-users-notification")
    print(f"        #petsc-users-notification: {notif.history()[-1].content!r}")

    print("[arc 4] email bot mirrors the thread into the forum")
    post = system.find_post("Singular Poisson stalls")
    assert post is not None
    starter = post.starter().content
    print(f"        post {post.title!r}; quoted reply stripped: "
          f"{'(an old quoted conversation' not in starter}")

    print("[arc 5] developer invokes /reply")
    draft = system.developer_replies(barry, post)
    print("-" * 78)
    print(draft.result.answer)
    print("-" * 78)

    print("[arc 6] developer asks for a revision")
    draft.message.button("revise").click(draft.message, barry)
    revised = system.chatbot.submit_revision(
        draft.message, barry, "Mention MatNullSpaceCreate explicitly."
    )
    print(f"        revision drafted (message {revised.message.message_id})")

    print("[arc 7] developer clicks send")
    revised.message.button("send").click(revised.message, barry)
    sent = system.chatbot.sent_emails[-1]
    print(f"        mailed to {system.mailing_list.address}: {sent.subject!r}")
    print(f"        signature: {sent.body.splitlines()[-1]!r}")
    print(f"        Discord message tagged: sent-by={revised.message.tags['sent-by']}")

    print("[arc 8] loop guard: the bot's own email arrives pre-read")
    print(f"        unread now: {system.account.unread_count()} "
          f"(poller fires again: {system.poll()})")

    print(f"\ninteraction history holds {len(system.store)} records")


if __name__ == "__main__":
    main()
