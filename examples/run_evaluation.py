#!/usr/bin/env python
"""Reproduce the paper's evaluation (Section V) in one run.

Prints the Fig. 6a/6b/6c comparison panels, the rerank-RAG score
distribution, and the Table II latency summary.

Run:  python examples/run_evaluation.py          (full latency simulation)
      python examples/run_evaluation.py --fast   (latency burn disabled)
"""

from __future__ import annotations

import sys

from repro import WorkflowConfig, build_default_corpus, compare_modes, run_experiment
from repro.evaluation import (
    BlindGrader,
    render_comparison,
    render_latency_table,
    render_score_histogram,
)
from repro.pipeline import build_rag_pipeline
from repro.retrieval import ManualPageKeywordSearch


def main() -> None:
    fast = "--fast" in sys.argv
    cfg = WorkflowConfig(iterations_per_token=0 if fast else None)

    bundle = build_default_corpus()
    keyword = ManualPageKeywordSearch(bundle)
    grader = BlindGrader(
        registry=bundle.registry, known_identifiers=keyword.known_identifiers()
    )

    runs = {}
    for mode in ("baseline", "rag", "rag+rerank"):
        print(f"running {mode} over the 37-question Krylov benchmark ...")
        pipeline = build_rag_pipeline(bundle, cfg, mode=mode)
        runs[mode] = run_experiment(pipeline, grader)

    print()
    print(render_comparison(
        compare_modes(runs["baseline"], runs["rag"]),
        title="Fig. 6a — baseline vs RAG",
    ))
    print()
    print(render_comparison(
        compare_modes(runs["baseline"], runs["rag+rerank"]),
        title="Fig. 6b — baseline vs reranking-enhanced RAG",
    ))
    print()
    print(render_comparison(
        compare_modes(runs["rag"], runs["rag+rerank"]),
        title="Fig. 6c — RAG vs reranking-enhanced RAG",
    ))
    print()
    print(render_score_histogram(runs["rag+rerank"], title="reranking-enhanced RAG"))
    print()
    print("Table II — run time for RAG and the LLM (seconds)")
    print(render_latency_table(
        runs["rag"].rag_stats(),
        runs["rag+rerank"].rag_stats(),
        runs["rag"].llm_stats(),
        runs["rag+rerank"].llm_stats(),
    ))


if __name__ == "__main__":
    main()
