#!/usr/bin/env python
"""The interaction-history database and blind-scoring workflow (III-F).

Runs a handful of questions through two pipeline configurations, stores
every interaction, has two blinded reviewers score them (the reviewers
see only question/answer pairs in shuffled order — no model names), then
shows how high-scoring answers flow back into RAG as new documents and
how the agentic-memory prototype consolidates recurring topics.

Run:  python examples/blind_scoring.py
"""

from __future__ import annotations

from repro import WorkflowConfig, build_default_corpus
from repro.agentmem import AgentMemory
from repro.history import BlindScoringSession, InteractionStore
from repro.pipeline import build_rag_pipeline

QUESTIONS = [
    "What is the default Krylov method and restart?",
    "How do I change the relative tolerance of a KSP solve?",
    "Why does GMRES keep allocating memory as it iterates?",
]


def main() -> None:
    bundle = build_default_corpus()
    cfg = WorkflowConfig(iterations_per_token=0)
    store = InteractionStore()

    print("collecting answers from two configurations ...")
    for mode in ("baseline", "rag+rerank"):
        pipeline = build_rag_pipeline(bundle, cfg, mode=mode)
        for q in QUESTIONS:
            store.record_pipeline_result(pipeline.answer(q), embedding_model="petsc-embed-large")

    # A developer-written answer lives in the same database and gets
    # scored the same way (the paper: "We can also score answers from
    # PETSc developers stored in the same database").
    store.record_human_answer(
        QUESTIONS[0],
        "The default is restarted GMRES; KSPGMRESSetRestart or "
        "-ksp_gmres_restart changes the restart length (default 30).",
        developer="barry",
    )

    print(f"{len(store)} interactions stored\n")
    print("blind scoring by two reviewers (provenance hidden, shuffled order):")
    for scorer in ("reviewer-a", "reviewer-b"):
        session = BlindScoringSession(store, scorer=scorer)
        for item in session.pending_items():
            # A toy reviewer heuristic: longer, option-bearing answers
            # read as more complete.  Real reviewers apply Table I.
            score = 4 if ("-ksp" in item.answer and len(item.answer) > 150) else 2
            session.submit(item.item_id, score, comment=f"scored by {scorer}")
        print(f"  {scorer}: done")

    print("\nmean blind scores per interaction:")
    for rec in store.all():
        who = "human " if rec.answered_by_human else rec.mode or "?"
        print(f"  [{who:>11}] {rec.question[:48]:<50} -> {rec.mean_score():.1f}")

    print("\nhigh-scoring interactions become RAG documents (dotted arrow in Fig. 3):")
    docs = store.as_documents(min_mean_score=3.0)
    for d in docs:
        print(f"  {d.metadata['source']}: {d.metadata['title'][:60]}")

    print("\nagentic memory consolidation over the session:")
    memory = AgentMemory(consolidation_threshold=2)
    for i, rec in enumerate(store.all()):
        memory.remember(rec.question, rec.answer, timestamp=float(i))
    memory.consolidate()
    for note in memory.recall("a question about gmres memory"):
        print(f"  note[{note.support} episodes]: {note.summary[:80]}")


if __name__ == "__main__":
    main()
