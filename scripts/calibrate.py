#!/usr/bin/env python
"""Calibration harness: print the paper-shape summary for a configuration.

Usage: python scripts/calibrate.py [--embedding NAME] [--model NAME] [--detail]
"""

from __future__ import annotations

import argparse

from repro.config import RetrievalConfig, WorkflowConfig
from repro.corpus import build_default_corpus
from repro.evaluation import BlindGrader, compare_modes, run_experiment
from repro.pipeline import build_rag_pipeline
from repro.retrieval import ManualPageKeywordSearch


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--embedding", default="petsc-embed-large")
    ap.add_argument("--model", default="gpt-4o-sim")
    ap.add_argument("--detail", action="store_true")
    args = ap.parse_args()

    bundle = build_default_corpus()
    cfg = WorkflowConfig(
        chat_model=args.model,
        retrieval=RetrievalConfig(embedding_model=args.embedding),
        iterations_per_token=0,
    )
    kw = ManualPageKeywordSearch(bundle)
    grader = BlindGrader(registry=bundle.registry, known_identifiers=kw.known_identifiers())

    runs = {}
    for mode in ("baseline", "rag", "rag+rerank"):
        pipeline = build_rag_pipeline(bundle, cfg, mode=mode)
        runs[mode] = run_experiment(pipeline, grader)
        print(f"{mode:<11} hist: {runs[mode].score_histogram()}  mean {runs[mode].mean_score():.2f}")

    for a, b, label, paper in (
        ("baseline", "rag", "Fig6a", "improved 20, worsened 3"),
        ("baseline", "rag+rerank", "Fig6b", "improved 25, worsened 0"),
        ("rag", "rag+rerank", "Fig6c", "improved 11 (two by +3)"),
    ):
        c = compare_modes(runs[a], runs[b])
        print(
            f"{label}: improved {len(c.improved)} worsened {len(c.worsened)} "
            f"{c.worsened} max+{c.max_improvement()}   [paper: {paper}]"
        )

    if args.detail:
        for mode in ("rag", "rag+rerank"):
            print(f"--- {mode} scores < 3:")
            for o in runs[mode].outcomes:
                if int(o.grade.score) >= 3:
                    continue
                q = o.question
                cand = set().union(*[c.document.fact_ids() for c in o.result.candidates]) if o.result.candidates else set()
                ctx = set().union(*[c.document.fact_ids() for c in o.result.contexts]) if o.result.contexts else set()
                key = set(q.key_facts)
                print(
                    f"{q.qid} s={int(o.grade.score)} {o.grade.justification[:55]} | "
                    f"key miss cand={sorted(key - cand)} ctx={sorted(key - ctx)}"
                )


if __name__ == "__main__":
    main()
