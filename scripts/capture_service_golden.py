"""Freeze the serving-stack golden digests into tests/fixtures/.

Run from the repo root::

    PYTHONPATH=src:. python scripts/capture_service_golden.py

The workloads live in ``tests/golden_workloads.py`` so the test suite
re-runs *exactly* the same code.  This script exists to be run once,
against the engine implementation the fixtures should pin; the
committed ``tests/fixtures/service_golden.json`` was captured against
the pre-interceptor-chain engine, making the fixture a cross-refactor
equivalence oracle rather than a self-fulfilling snapshot.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.corpus.builder import build_default_corpus

from tests.golden_workloads import capture_all

OUT = Path(__file__).resolve().parent.parent / "tests" / "fixtures" / "service_golden.json"


def main() -> None:
    bundle = build_default_corpus()
    golden = capture_all(bundle)
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT}")
    print(json.dumps(golden, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
