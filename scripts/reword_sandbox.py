#!/usr/bin/env python
"""Try candidate question rewordings: report embedding ranks of the gold
fact chunks and the scores each pipeline mode would get.

Edit CANDIDATES below, run, and inspect.  Used to craft the user-speak
phrasings of the benchmark (the paper: "A user's initial question may be
vague, lack context, or use incorrect PETSc terminology").
"""

from __future__ import annotations

import numpy as np

from repro.config import WorkflowConfig
from repro.corpus import build_default_corpus
from repro.corpus.builder import chunk_corpus
from repro.embeddings import create_embedding_model
from repro.evaluation import BlindGrader
from repro.evaluation.benchmark import BenchmarkQuestion, krylov_benchmark
from repro.pipeline import build_rag_pipeline
from repro.retrieval import ManualPageKeywordSearch
from repro.vectorstore import VectorStore

# (qid, new_text) — key/extra facts inherited from the original question.
CANDIDATES: list[tuple[str, str]] = [
    ("Q05", "Our application hardwires one solver right now. We would like to try "
            "several different Krylov methods on the same problem without recompiling "
            "each time. What is the PETSc way to switch?"),
    ("Q10", "We warm-start each step from the previous solution vector, but the "
            "iteration counts do not drop at all compared to starting from scratch. "
            "Is PETSc ignoring the vector we pass in?"),
    ("Q13", "Long runs on our cluster get killed by the out-of-memory killer; the "
            "resident memory climbs steadily while the default linear solver "
            "iterates. Is this a leak in PETSc?"),
    ("Q17", "Our operator is only available as a forward action y = A x; there is no "
            "way to apply its adjoint. Can we still use the stabilized biconjugate "
            "gradient solver?"),
    ("Q24", "During the setup of the factorization our run aborts with a "
            "division-by-zero-like failure on the diagonal. The matrix comes from a "
            "mixed finite element discretization. How do we get past this?"),
    ("Q25", "Our pressure solve for incompressible flow stalls around a relative "
            "accuracy of 1e-3 no matter how many iterations we allow. The discrete "
            "operator has the constant vector in its kernel. What are we missing?"),
    ("Q31", "At extreme scale, why do multigrid configurations prefer a polynomial "
            "iteration as the smoother instead of CG or GMRES?"),
    ("Q34", "Every outer optimization step updates the matrix entries. Destroying "
            "and recreating the whole solver each step feels wasteful — is there a "
            "cheaper supported pattern?"),
    ("Q14", "Picking the cycle length for the restarted solver feels like a dark "
            "art. What exactly gets worse when it is small, and is cranking it way "
            "up always the right call?"),
    ("Q16", "The convergence curve of our stabilized biconjugate gradient runs looks "
            "like a seismograph. Is there a knob or a cousin of this method that "
            "behaves less wildly?"),
    ("Q30", "We want to try the polynomial (Chebyshev-type) iteration as a smoother. "
            "What does it need from us to work at all, and what happens if we just "
            "turn it on?"),
]


def main() -> None:
    bundle = build_default_corpus()
    chunks = chunk_corpus(bundle)
    emb = create_embedding_model("petsc-embed-large", corpus_texts=[c.text for c in chunks])
    store = VectorStore.from_documents(chunks, emb)
    cfg = WorkflowConfig(iterations_per_token=0)
    kw = ManualPageKeywordSearch(bundle)
    grader = BlindGrader(registry=bundle.registry, known_identifiers=kw.known_identifiers())
    pipes = {m: build_rag_pipeline(bundle, cfg, mode=m) for m in ("baseline", "rag", "rag+rerank")}
    questions = {q.qid: q for q in krylov_benchmark()}

    for qid, text in CANDIDATES:
        base = questions[qid]
        q = BenchmarkQuestion(
            qid=qid, text=text, key_facts=base.key_facts,
            extra_facts=base.extra_facts, kind=base.kind,
        )
        qvec = emb.embed_query(q.text)
        s = store.index.matrix @ qvec
        order = np.argsort(-s)
        ranks = []
        for fid in q.key_facts + q.extra_facts:
            pos = [r + 1 for r, i in enumerate(order) if fid in (chunks[i].metadata.get("facts") or "")]
            ranks.append((fid.split(".")[-1][:12], pos[:2]))
        scores = {}
        for mode, p in pipes.items():
            res = p.answer(q.text)
            scores[mode] = int(grader.grade(q, res.answer).score)
        print(f"{qid} base={scores['baseline']} rag={scores['rag']} rrk={scores['rag+rerank']}  ranks={ranks}")


if __name__ == "__main__":
    main()
